"""Priority-based request arbiters.

Section 3.5: "The L2 and bus arbiters maintain a strict, priority-based
ordering of requests.  Demand requests are given the highest priority,
while stride prefetcher requests are favored over content prefetcher
requests because of their higher accuracy."  Within the content prefetcher,
depth provides the priority ("this depth element provides a means for
assigning a priority to each memory request").

Overflow behaviour, also per Section 3.5:

* a prefetch arriving at a full arbiter is **squashed** (no retry);
* a demand arriving at a full arbiter **dequeues the lowest-priority
  prefetch** and takes its place — no demand request is ever stalled by
  queued prefetches.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.cache.line import Requester
from repro.snapshot.hooks import (
    canonical_heap,
    dataclass_state,
    load_dataclass_state,
)

__all__ = ["MemoryRequest", "ArbiterStats", "PriorityArbiter"]


@dataclass(slots=True)
class MemoryRequest:
    """One line-granular memory request flowing through the arbiters.

    Requests are pooled and reused by the timing memory system (issue and
    grant are the hot path of every sweep), so holders must not keep a
    reference past the bus grant that consumes the request.
    """

    line_paddr: int
    line_vaddr: int
    requester: Requester
    depth: int = 0
    create_time: int = 0
    pc: int = 0
    # Page-walk fills bypass the content prefetcher's scanner.
    scannable: bool = True

    def priority_key(self) -> tuple:
        """Lower tuples are higher priority."""
        return (int(self.requester), self.depth, self.create_time)

    def state_dict(self) -> dict:
        return {
            "line_paddr": self.line_paddr,
            "line_vaddr": self.line_vaddr,
            "requester": int(self.requester),
            "depth": self.depth,
            "create_time": self.create_time,
            "pc": self.pc,
            "scannable": self.scannable,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MemoryRequest":
        return cls(
            state["line_paddr"],
            state["line_vaddr"],
            Requester(state["requester"]),
            depth=state["depth"],
            create_time=state["create_time"],
            pc=state["pc"],
            scannable=state["scannable"],
        )


@dataclass(slots=True)
class ArbiterStats:
    enqueued: int = 0
    granted: int = 0
    squashed_full: int = 0
    displaced_by_demand: int = 0
    duplicates_dropped: int = 0
    peak_occupancy: int = 0
    squashed_by_requester: dict = field(default_factory=dict)

    def record_squash(self, requester: Requester) -> None:
        key = requester.name
        self.squashed_by_requester[key] = (
            self.squashed_by_requester.get(key, 0) + 1
        )


class PriorityArbiter:
    """Bounded priority queue of :class:`MemoryRequest`."""

    __slots__ = ("capacity", "name", "stats", "_heap", "_seq", "_live",
                 "_lines")

    def __init__(self, capacity: int, name: str = "arbiter") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = ArbiterStats()
        self._heap: list = []
        # Explicit tie-break counter (not itertools.count) so snapshots
        # capture and restore the exact enqueue sequence.
        self._seq = 0
        self._live = 0
        # Line addresses of live (non-tombstoned) entries.  Duplicate
        # enqueues are dropped, so membership is exact — this is the O(1)
        # index behind contains_line, which sits on the prefetch-issue
        # hot path and used to scan the whole heap.
        self._lines: set = set()

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        return self._live >= self.capacity

    def pending_lines(self) -> set:
        return set(self._lines)

    def contains_line(self, line_paddr: int) -> bool:
        return line_paddr in self._lines

    # -- enqueue -------------------------------------------------------------

    def enqueue(self, request: MemoryRequest) -> bool:
        """Add a request; returns ``False`` if it was squashed.

        Duplicate line addresses are dropped (the in-flight check of
        Section 3.5 extends to queued requests).
        """
        if request.line_paddr in self._lines:
            self.stats.duplicates_dropped += 1
            return False
        if self.full:
            if request.requester is Requester.DEMAND:
                if not self._displace_lowest_prefetch():
                    # Queue entirely full of demands: model as an unbounded
                    # demand queue (a real machine would stall the core; the
                    # timing cost shows up as queueing delay instead).
                    pass
                else:
                    self.stats.displaced_by_demand += 1
            else:
                self.stats.squashed_full += 1
                self.stats.record_squash(request.requester)
                return False
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (request.priority_key(), seq, request))
        self._lines.add(request.line_paddr)
        self._live += 1
        self.stats.enqueued += 1
        if self._live > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self._live
        return True

    def _displace_lowest_prefetch(self) -> bool:
        """Remove the lowest-priority prefetch (lazy deletion)."""
        victim_index = None
        victim_key = None
        for index, (key, _, req) in enumerate(self._heap):
            if req is None or not req.requester.is_prefetch:
                continue
            if victim_key is None or key > victim_key:
                victim_key = key
                victim_index = index
        if victim_index is None:
            return False
        key, seq, victim = self._heap[victim_index]
        self._heap[victim_index] = (key, seq, None)
        self._lines.discard(victim.line_paddr)
        self._live -= 1
        return True

    # -- dequeue -------------------------------------------------------------

    def pop(self) -> MemoryRequest | None:
        """Remove and return the highest-priority request, if any."""
        while self._heap:
            _, _, request = heapq.heappop(self._heap)
            if request is not None:
                self._lines.discard(request.line_paddr)
                self._live -= 1
                self.stats.granted += 1
                return request
        return None

    def peek(self) -> MemoryRequest | None:
        while self._heap and self._heap[0][2] is None:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """The heap in canonical order, tombstones dropped.

        Keys ``(priority_key, seq)`` are unique, so pop order is a pure
        function of the live entry multiset — see
        :func:`repro.snapshot.hooks.canonical_heap` for why canonical
        (sorted) capture keeps digests layout-independent while restored
        runs still pop bit-identically.  Lazily-deleted entries carry no
        state (every skip-path observes only live entries), so they are
        omitted rather than serialized; the tie-break counter is kept so
        future enqueues continue the exact sequence.
        """
        return {
            "stats": dataclass_state(self.stats),
            "seq": self._seq,
            "live": self._live,
            "heap": [
                [list(key), seq, req.state_dict()]
                for key, seq, req in canonical_heap(self._heap)
                if req is not None
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        self._seq = state["seq"]
        self._live = state["live"]
        # A sorted array is a valid binary heap; load it directly.
        self._heap = [
            (tuple(key), seq, MemoryRequest.from_state(req_state))
            for key, seq, req_state in state["heap"]
        ]
        self._lines = {req.line_paddr for _, _, req in self._heap}

    # -- integrity ----------------------------------------------------------

    def verify_priority_order(self) -> bool:
        """Check the internal heap invariant (used by the invariant checker).

        A violated heap would dequeue requests out of priority order —
        demand-before-prefetch and shallow-before-deep would silently stop
        holding.  Lazy-deleted entries participate via their frozen keys,
        which heapq keeps ordered regardless.
        """
        heap = self._heap
        for index in range(1, len(heap)):
            parent = (index - 1) // 2
            if heap[parent][:2] > heap[index][:2]:
                return False
        return True
