"""Arbiters and front-side-bus/DRAM models (Figure 6, Section 3.5)."""

from repro.interconnect.arbiter import ArbiterStats, MemoryRequest, PriorityArbiter
from repro.interconnect.bus import Bus, L2Port

__all__ = [
    "ArbiterStats",
    "Bus",
    "L2Port",
    "MemoryRequest",
    "PriorityArbiter",
]
