"""Front-side bus / DRAM timing and the L2 access port.

Table 1 gives a 460-processor-cycle bus latency (8 bus cycles through the
chipset plus 55 ns of DRAM) and 4.26 GB/s of bandwidth.  We model the bus as
a single serially-occupied resource: a granted line transfer holds the bus
for ``line_size / bytes_per_cycle`` cycles (~60 cycles for a 64-byte line at
4 GHz), and its fill data arrives ``bus_latency`` cycles after the grant.
Queueing delay emerges naturally when transfers are requested faster than
the occupancy allows — this is the mechanism that makes over-aggressive
prefetching hurt.

The L2 port models Table 1's "L2 throughput: 1 cycle": every L2 lookup,
fill, prefetcher scan or reinforcement *rescan* consumes a port slot, which
is how the paper's observation that long-chain rescans "can flood the bus
arbiters and cache read ports" manifests in the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import BusConfig
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["BusStats", "Bus", "L2Port"]


@dataclass(slots=True)
class BusStats:
    transfers: int = 0
    busy_cycles: int = 0
    total_queue_delay: int = 0

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class Bus:
    """Serially-occupied front-side bus with fixed fill latency."""

    __slots__ = ("config", "occupancy", "latency", "stats", "_next_free")

    def __init__(self, config: BusConfig, line_size: int = 64) -> None:
        self.config = config
        self.occupancy = config.line_occupancy(line_size)
        self.latency = config.bus_latency
        self.stats = BusStats()
        self._next_free = 0

    @property
    def next_free(self) -> int:
        return self._next_free

    def busy_at(self, time: int) -> bool:
        return time < self._next_free

    def grant(self, time: int) -> tuple[int, int]:
        """Grant a line transfer requested at *time*.

        Returns ``(grant_time, fill_time)``: when the transfer actually
        started and when its data arrives at the L2.
        """
        occupancy = self.occupancy
        grant_time = max(time, self._next_free)
        self._next_free = grant_time + occupancy
        fill_time = grant_time + self.latency
        stats = self.stats
        stats.transfers += 1
        stats.busy_cycles += occupancy
        stats.total_queue_delay += grant_time - time
        return grant_time, fill_time

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "next_free": self._next_free,
            "stats": dataclass_state(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        self._next_free = state["next_free"]
        load_dataclass_state(self.stats, state["stats"])


class L2Port:
    """The UL2's single access port (1-cycle throughput)."""

    __slots__ = ("cycles_per_access", "_next_free", "accesses", "rescans")

    def __init__(self, cycles_per_access: int = 1) -> None:
        self.cycles_per_access = cycles_per_access
        self._next_free = 0
        self.accesses = 0
        self.rescans = 0

    def reserve(self, time: int, is_rescan: bool = False) -> int:
        """Claim one access slot at or after *time*; returns the slot time."""
        slot = max(time, self._next_free)
        self._next_free = slot + self.cycles_per_access
        self.accesses += 1
        if is_rescan:
            self.rescans += 1
        return slot

    @property
    def next_free(self) -> int:
        return self._next_free

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "next_free": self._next_free,
            "accesses": self.accesses,
            "rescans": self.rescans,
        }

    def load_state_dict(self, state: dict) -> None:
        self._next_free = state["next_free"]
        self.accesses = state["accesses"]
        self.rescans = state["rescans"]
