"""Stream-buffer prefetcher (Jouppi 1990 — the paper's reference [11]).

Not part of the paper's evaluated configurations, but the classic
sequential prefetcher its related-work section positions against, included
so ablations can compare content-directed prefetching with the other
standard hardware schemes of the era.

A small set of stream buffers is managed with LRU: each L1 miss is checked
against the heads of all buffers.  A hit consumes the head and extends the
stream one line; a miss (re)allocates the LRU buffer to a new stream
starting at the next sequential line.  Buffers hold line *addresses* only
(the cache itself stores the data in our model, matching how the content
prefetcher fills into the L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.address import ADDRESS_BITS, line_mask
from repro.prefetch.base import PrefetchCandidate, PrefetchKind

__all__ = ["StreamBufferStats", "StreamBufferPrefetcher"]


@dataclass
class _StreamBuffer:
    next_line: int = -1
    remaining: int = 0
    last_used: int = 0


@dataclass
class StreamBufferStats:
    misses_observed: int = 0
    head_hits: int = 0
    allocations: int = 0
    issued: int = 0
    per_buffer_hits: dict = field(default_factory=dict)


class StreamBufferPrefetcher:
    """A file of sequential stream buffers."""

    def __init__(
        self,
        num_buffers: int = 4,
        depth: int = 4,
        line_size: int = 64,
        address_bits: int = ADDRESS_BITS,
    ) -> None:
        if num_buffers <= 0 or depth <= 0:
            raise ValueError("buffers and depth must be positive")
        self.num_buffers = num_buffers
        self.depth = depth
        self.stats = StreamBufferStats()
        self._line_size = line_size
        self._line_mask = line_mask(line_size, address_bits)
        self._buffers = [_StreamBuffer() for _ in range(num_buffers)]
        self._clock = 0

    def observe_miss(self, vaddr: int) -> list[PrefetchCandidate]:
        """Feed one miss; returns the lines to prefetch (if any)."""
        self._clock += 1
        self.stats.misses_observed += 1
        line = vaddr & self._line_mask
        buffer = self._find_head(line)
        if buffer is not None:
            # Stream continues: consume the head, extend the tail.
            self.stats.head_hits += 1
            index = self._buffers.index(buffer)
            self.stats.per_buffer_hits[index] = (
                self.stats.per_buffer_hits.get(index, 0) + 1
            )
            buffer.last_used = self._clock
            buffer.next_line = line + self._line_size
            tail = line + self.depth * self._line_size
            self.stats.issued += 1
            return [PrefetchCandidate(
                tail, 1, PrefetchKind.STRIDE, trigger_vaddr=vaddr,
            )]
        # New stream: reallocate the LRU buffer and issue the whole depth.
        victim = min(self._buffers, key=lambda b: b.last_used)
        victim.next_line = line + self._line_size
        victim.remaining = self.depth
        victim.last_used = self._clock
        self.stats.allocations += 1
        candidates = [
            PrefetchCandidate(
                line + k * self._line_size, 1, PrefetchKind.STRIDE,
                trigger_vaddr=vaddr,
            )
            for k in range(1, self.depth + 1)
        ]
        self.stats.issued += len(candidates)
        return candidates

    def _find_head(self, line: int) -> _StreamBuffer | None:
        for buffer in self._buffers:
            if buffer.next_line == line:
                return buffer
        return None

    def tracked_heads(self) -> list[int]:
        """Current stream head lines (test/debug helper)."""
        return [b.next_line for b in self._buffers if b.next_line >= 0]
