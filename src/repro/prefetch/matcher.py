"""The virtual-address-matching pointer-recognition heuristic.

This is Section 3.3 / Figures 2 and 5 of the paper, and the component the
authors call "a core design feature of the content prefetcher".

A word scanned out of a filled cache line is deemed a *candidate virtual
address* when:

1. **Compare bits** — its upper ``N`` bits equal the upper ``N`` bits of the
   effective address of the request that triggered the fill ("most virtual
   data addresses tend to share common high-order bits").
2. **Filter bits** — if those upper ``N`` bits are all zeros (or all ones),
   small integers (or small negative integers) would spuriously match, so
   the next ``M`` bits of the *candidate* must contain a non-zero (non-one)
   bit.  ``M = 0`` disables prediction in the extreme regions entirely;
   larger ``M`` relaxes the requirement.
3. **Align bits** — the low ``A`` bits must be zero (compilers place
   pointers on 2- or 4-byte boundaries).

The line is scanned at a stride of ``scan_step`` bytes; a 64-byte line with
a 4-byte step examines 16 words, with a 1-byte step 61.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ContentConfig

__all__ = ["MatcherStats", "VirtualAddressMatcher"]


@dataclass
class MatcherStats:
    words_examined: int = 0
    candidates: int = 0
    rejected_align: int = 0
    rejected_compare: int = 0
    rejected_filter: int = 0


class VirtualAddressMatcher:
    """Stateless pointer recogniser (compare / filter / align / step)."""

    def __init__(self, config: ContentConfig) -> None:
        self.config = config
        self.stats = MatcherStats()
        bits = config.address_bits
        self._compare_shift = bits - config.compare_bits
        self._upper_ones = (1 << config.compare_bits) - 1
        self._align_mask = (1 << config.align_bits) - 1
        if config.filter_bits:
            self._filter_shift = self._compare_shift - config.filter_bits
            if self._filter_shift < 0:
                raise ValueError("compare_bits + filter_bits exceed the space")
            self._filter_mask = (1 << config.filter_bits) - 1
        else:
            self._filter_shift = 0
            self._filter_mask = 0
        self._word_size = config.word_size
        self._addr_mask = (1 << bits) - 1

    # -- single-word test ------------------------------------------------------

    def is_candidate(self, word: int, effective_vaddr: int) -> bool:
        """Figure 5's decision: is *word* a likely virtual address?"""
        self.stats.words_examined += 1
        word &= self._addr_mask
        if word & self._align_mask:
            self.stats.rejected_align += 1
            return False
        upper_eff = (effective_vaddr & self._addr_mask) >> self._compare_shift
        upper_word = word >> self._compare_shift
        if upper_word != upper_eff:
            self.stats.rejected_compare += 1
            return False
        if upper_eff == 0:
            if not self._filter_pass_zero(word):
                self.stats.rejected_filter += 1
                return False
        elif upper_eff == self._upper_ones:
            if not self._filter_pass_one(word):
                self.stats.rejected_filter += 1
                return False
        self.stats.candidates += 1
        return True

    def _filter_pass_zero(self, word: int) -> bool:
        """Lower region: require a non-zero bit among the filter bits."""
        if not self._filter_mask:
            return False
        return (word >> self._filter_shift) & self._filter_mask != 0

    def _filter_pass_one(self, word: int) -> bool:
        """Upper region: require a non-one bit among the filter bits."""
        if not self._filter_mask:
            return False
        filter_bits = (word >> self._filter_shift) & self._filter_mask
        return filter_bits != self._filter_mask

    # -- whole-line scan ---------------------------------------------------------

    def scan(self, line_bytes: bytes, effective_vaddr: int) -> list[int]:
        """Scan a cache line's bytes, returning candidate addresses.

        The hardware evaluates all positions concurrently ("such scanning
        is parallel by nature"); functionally that is identical to this
        sequential walk at ``scan_step``-byte offsets.
        """
        candidates = []
        step = self.config.scan_step
        last = len(line_bytes) - self._word_size
        for offset in range(0, last + 1, step):
            word = int.from_bytes(
                line_bytes[offset:offset + self._word_size], "little"
            )
            if self.is_candidate(word, effective_vaddr):
                candidates.append(word)
        return candidates

    def prefetchable_range_bytes(self) -> int:
        """Size of the region reachable from one effective address.

        Increasing compare bits halves this range — the coverage/accuracy
        tradeoff discussed with Figure 7.
        """
        return 1 << self._compare_shift
