"""The virtual-address-matching pointer-recognition heuristic.

This is Section 3.3 / Figures 2 and 5 of the paper, and the component the
authors call "a core design feature of the content prefetcher".

A word scanned out of a filled cache line is deemed a *candidate virtual
address* when:

1. **Compare bits** — its upper ``N`` bits equal the upper ``N`` bits of the
   effective address of the request that triggered the fill ("most virtual
   data addresses tend to share common high-order bits").
2. **Filter bits** — if those upper ``N`` bits are all zeros (or all ones),
   small integers (or small negative integers) would spuriously match, so
   the next ``M`` bits of the *candidate* must contain a non-zero (non-one)
   bit.  ``M = 0`` disables prediction in the extreme regions entirely;
   larger ``M`` relaxes the requirement.
3. **Align bits** — the low ``A`` bits must be zero (compilers place
   pointers on 2- or 4-byte boundaries).

The line is scanned at a stride of ``scan_step`` bytes; a 64-byte line with
a 4-byte step examines 16 words, with a 1-byte step 61.

Two scan implementations exist.  :meth:`VirtualAddressMatcher.scan` is the
production path: it picks the fastest eligible strategy for the matcher's
geometry (byte-classifier search, bulk ``struct.unpack_from`` extraction,
or a big-int shift walk — see :meth:`~VirtualAddressMatcher._scan_plan`)
and updates :class:`MatcherStats` once per scan.
:meth:`~VirtualAddressMatcher.scan_reference` is the original
word-at-a-time walk through :meth:`is_candidate`, kept as the oracle the
vectorized path is property-tested against — both must return
bit-identical candidates and apply bit-identical stats deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from struct import unpack_from

from repro.params import ContentConfig

__all__ = ["MatcherStats", "VirtualAddressMatcher"]

# struct codes for word sizes the fast scan path can bulk-extract.
_STRUCT_CODES = {2: "H", 4: "I", 8: "Q"}


@dataclass(slots=True)
class MatcherStats:
    words_examined: int = 0
    candidates: int = 0
    rejected_align: int = 0
    rejected_compare: int = 0
    rejected_filter: int = 0


class VirtualAddressMatcher:
    """Stateless pointer recogniser (compare / filter / align / step)."""

    def __init__(self, config: ContentConfig) -> None:
        self.config = config
        self.stats = MatcherStats()
        bits = config.address_bits
        self._compare_shift = bits - config.compare_bits
        self._upper_ones = (1 << config.compare_bits) - 1
        self._align_mask = (1 << config.align_bits) - 1
        if config.filter_bits:
            self._filter_shift = self._compare_shift - config.filter_bits
            if self._filter_shift < 0:
                raise ValueError("compare_bits + filter_bits exceed the space")
            self._filter_mask = (1 << config.filter_bits) - 1
        else:
            self._filter_shift = 0
            self._filter_mask = 0
        self._word_size = config.word_size
        self._addr_mask = (1 << bits) - 1
        self._word_bits_mask = (1 << (8 * config.word_size)) - 1
        # Bulk-extraction plans for the vectorized scan, keyed by line
        # length (the step/word geometry is fixed per matcher instance).
        self._scan_plans: dict = {}
        # Byte-classifier tables for the bytewise fast path: a 256-entry
        # translate table marking align-rejected low bytes, and a cache of
        # per-upper_eff tables marking compare-matching top bytes (only
        # needed when compare_bits < 8; at exactly 8 the raw top byte is
        # searched directly).
        if 0 < self._align_mask < 256:
            self._align_tbl: bytes | None = bytes(
                1 if b & self._align_mask else 0 for b in range(256)
            )
        else:
            self._align_tbl = None
        self._compare_tbl_cache: dict = {}

    # -- single-word test ------------------------------------------------------

    def is_candidate(self, word: int, effective_vaddr: int) -> bool:
        """Figure 5's decision: is *word* a likely virtual address?"""
        self.stats.words_examined += 1
        word &= self._addr_mask
        if word & self._align_mask:
            self.stats.rejected_align += 1
            return False
        upper_eff = (effective_vaddr & self._addr_mask) >> self._compare_shift
        upper_word = word >> self._compare_shift
        if upper_word != upper_eff:
            self.stats.rejected_compare += 1
            return False
        if upper_eff == 0:
            if not self._filter_pass_zero(word):
                self.stats.rejected_filter += 1
                return False
        elif upper_eff == self._upper_ones:
            if not self._filter_pass_one(word):
                self.stats.rejected_filter += 1
                return False
        self.stats.candidates += 1
        return True

    def _filter_pass_zero(self, word: int) -> bool:
        """Lower region: require a non-zero bit among the filter bits."""
        if not self._filter_mask:
            return False
        return (word >> self._filter_shift) & self._filter_mask != 0

    def _filter_pass_one(self, word: int) -> bool:
        """Upper region: require a non-one bit among the filter bits."""
        if not self._filter_mask:
            return False
        filter_bits = (word >> self._filter_shift) & self._filter_mask
        return filter_bits != self._filter_mask

    # -- whole-line scan ---------------------------------------------------------

    def scan(self, line_bytes: bytes, effective_vaddr: int) -> list[int]:
        """Scan a cache line's bytes, returning candidate addresses.

        The hardware evaluates all positions concurrently ("such scanning
        is parallel by nature"); this path mirrors that by classifying
        scan positions in bulk rather than slicing a bytes object per
        word — dispatching to the fastest strategy the geometry allows
        (see :meth:`_scan_plan`).  Results and stats deltas are
        bit-identical to :meth:`scan_reference`.
        """
        if len(line_bytes) < self._word_size:
            return []
        kind, plan = self._scan_plan(len(line_bytes))
        if kind == "byte":
            return self._scan_bytewise(line_bytes, effective_vaddr, plan)
        if kind == "generic":
            return self._scan_generic(line_bytes, effective_vaddr)
        return self._scan_words(line_bytes, effective_vaddr, plan)

    def _scan_words(
        self, line_bytes: bytes, effective_vaddr: int, plan
    ) -> list[int]:
        """Bulk-extraction scan: one ``struct.unpack_from`` per alignment
        class, then a tight classification loop over machine ints."""
        align_mask = self._align_mask
        compare_shift = self._compare_shift
        upper_eff = (
            (effective_vaddr & self._addr_mask) >> compare_shift
        )
        extreme = upper_eff == 0 or upper_eff == self._upper_ones
        filter_mask = self._filter_mask
        filter_shift = self._filter_shift
        # In the all-ones region a match needs a non-one filter bit, in
        # the all-zero region a non-zero one; matching `reject_value`
        # exactly (or having no filter bits at all) rejects the word.
        reject_value = filter_mask if upper_eff else 0
        found: list[tuple[int, int]] = []
        append = found.append
        examined = 0
        rejected_align = rejected_compare = rejected_filter = 0
        for fmt, offset, take in plan:
            part = unpack_from(fmt, line_bytes, offset)
            if take != 1:
                part = part[::take]
            pos_step = self._word_size * take
            pos = offset
            examined += len(part)
            if extreme:
                for word in part:
                    if word & align_mask:
                        rejected_align += 1
                    elif word >> compare_shift != upper_eff:
                        rejected_compare += 1
                    elif (
                        not filter_mask
                        or (word >> filter_shift) & filter_mask
                        == reject_value
                    ):
                        rejected_filter += 1
                    else:
                        append((pos, word))
                    pos += pos_step
            else:
                for word in part:
                    if word & align_mask:
                        rejected_align += 1
                    elif word >> compare_shift != upper_eff:
                        rejected_compare += 1
                    else:
                        append((pos, word))
                    pos += pos_step
        stats = self.stats
        stats.words_examined += examined
        stats.candidates += len(found)
        stats.rejected_align += rejected_align
        stats.rejected_compare += rejected_compare
        stats.rejected_filter += rejected_filter
        if not found:
            return []
        if len(found) > 1:
            found.sort()
        return [word for _, word in found]

    def _scan_plan(self, length: int):
        """Cached ``(kind, plan)`` scan strategy for *length*-byte lines.

        Three tiers, fastest eligible wins:

        * ``("byte", (low_slice, top_slice, count))`` — the compare field
          is exactly each word's top byte (``compare_bits <= 8`` and the
          address space as wide as the word), so compare matches are
          located with C-speed ``bytes.find`` over a strided top-byte
          slice and align rejections counted with a 256-entry translate
          table; Python-level work happens only on matching words.
        * ``("words", [(struct_format, byte_offset, take_every), ...])``
          — alignment classes that bulk-extract every scan position with
          one ``struct.unpack_from`` each, then classify in a tight loop.
        * ``("generic", None)`` — odd geometries (word sizes struct
          cannot express, steps that do not tile the word, an address
          space narrower than the word) fall back to the big-int walk.
        """
        plan = self._scan_plans.get(length)
        if plan is not None:
            return plan
        plan = self._build_scan_plan(length)
        self._scan_plans[length] = plan
        return plan

    def _build_scan_plan(self, length: int):
        word_size = self._word_size
        step = self.config.scan_step
        count = (length - word_size) // step + 1
        if (
            1 <= self.config.compare_bits <= 8
            and self.config.address_bits == 8 * word_size
            and self._align_mask < 256
        ):
            last = (count - 1) * step
            return (
                "byte",
                (
                    slice(0, last + 1, step),
                    slice(word_size - 1, last + word_size, step),
                    count,
                    # Dense-line escape hatch: when most scan positions
                    # pass the compare test, the per-match Python work of
                    # the byte classifier exceeds one bulk unpack — the
                    # bytewise scan counts matches first and delegates.
                    self._words_plan(length),
                ),
            )
        plan = self._words_plan(length)
        if plan is None:
            return ("generic", None)
        return ("words", plan)

    def _words_plan(self, length: int):
        """Bulk-extraction plan for *length*-byte lines, or ``None`` when
        the geometry cannot be expressed with ``struct`` alignment
        classes (word sizes struct cannot encode, steps that do not tile
        the word, an address space narrower than the word)."""
        word_size = self._word_size
        step = self.config.scan_step
        code = _STRUCT_CODES.get(word_size)
        if code is None or self._addr_mask < self._word_bits_mask:
            return None
        if step >= word_size:
            if step % word_size:
                return None
            words = length // word_size
            if words <= 0:
                return None
            return [("<%d%s" % (words, code), 0, step // word_size)]
        if word_size % step:
            return None
        plan = []
        for j in range(word_size // step):
            offset = j * step
            words = (length - offset) // word_size
            if words > 0:
                plan.append(("<%d%s" % (words, code), offset, 1))
        return plan

    def _compare_tbl(self, upper_eff: int) -> bytes:
        """Translate table flagging top bytes whose high ``compare_bits``
        equal *upper_eff* (used when the compare field is a partial byte)."""
        tbl = self._compare_tbl_cache.get(upper_eff)
        if tbl is None:
            drop = 8 - self.config.compare_bits
            tbl = bytes(
                1 if b >> drop == upper_eff else 0 for b in range(256)
            )
            self._compare_tbl_cache[upper_eff] = tbl
        return tbl

    def _scan_bytewise(
        self, line_bytes: bytes, effective_vaddr: int, plan
    ) -> list[int]:
        """Byte-classifier scan: C-speed search for compare matches.

        With ``compare_bits <= 8`` and an address space as wide as the
        word, the compare decision depends only on each word's top byte
        and the align decision only on its low byte.  The top bytes of
        every scan position form one strided slice, so compare matches
        are found with ``bytes.find`` and align rejections counted with
        ``translate().count()`` — both C loops.  Only the (typically
        rare) compare-matching words are touched in Python.
        """
        low_slice, top_slice, count, words_plan = plan
        upper_eff = (effective_vaddr & self._addr_mask) >> self._compare_shift
        top_bytes = line_bytes[top_slice]
        if self.config.compare_bits == 8:
            haystack = top_bytes
            needle = upper_eff
        else:
            haystack = top_bytes.translate(self._compare_tbl(upper_eff))
            needle = 1
        if words_plan is not None and haystack.count(needle) >= 4:
            # Compare-match-dense line (pointer-heavy data): the per-match
            # slicing below would dominate, so classify by bulk unpack
            # instead.  Both paths apply bit-identical stats deltas.
            return self._scan_words(line_bytes, effective_vaddr, words_plan)
        align_mask = self._align_mask
        if self._align_tbl is not None:
            rejected_align = (
                line_bytes[low_slice].translate(self._align_tbl).count(1)
            )
        else:
            rejected_align = 0
        step = self.config.scan_step
        word_size = self._word_size
        found: list[int] = []
        append = found.append
        find = haystack.find
        rejected_filter = 0
        index = find(needle)
        if upper_eff != 0 and upper_eff != self._upper_ones:
            while index >= 0:
                pos = index * step
                if not (align_mask and line_bytes[pos] & align_mask):
                    append(
                        int.from_bytes(
                            line_bytes[pos:pos + word_size], "little"
                        )
                    )
                index = find(needle, index + 1)
            passed = len(found)
        else:
            filter_mask = self._filter_mask
            filter_shift = self._filter_shift
            reject_value = filter_mask if upper_eff else 0
            passed = 0
            while index >= 0:
                pos = index * step
                if not (align_mask and line_bytes[pos] & align_mask):
                    word = int.from_bytes(
                        line_bytes[pos:pos + word_size], "little"
                    )
                    passed += 1
                    if (
                        not filter_mask
                        or (word >> filter_shift) & filter_mask
                        == reject_value
                    ):
                        rejected_filter += 1
                    else:
                        append(word)
                index = find(needle, index + 1)
        stats = self.stats
        stats.words_examined += count
        stats.candidates += len(found)
        stats.rejected_align += rejected_align
        stats.rejected_compare += count - rejected_align - passed
        stats.rejected_filter += rejected_filter
        return found

    def _scan_generic(
        self, line_bytes: bytes, effective_vaddr: int
    ) -> list[int]:
        """Shift/mask scan for geometries without a bulk-extraction plan.

        Loads the line once as a big integer and walks it by shifting —
        still substantially faster than the reference path, and exact for
        any word size, step, or address width.
        """
        step = self.config.scan_step
        last = len(line_bytes) - self._word_size
        positions = last // step + 1
        line_int = int.from_bytes(line_bytes, "little")
        word_mask = self._word_bits_mask
        addr_mask = self._addr_mask
        align_mask = self._align_mask
        compare_shift = self._compare_shift
        upper_eff = (effective_vaddr & addr_mask) >> compare_shift
        extreme = upper_eff == 0 or upper_eff == self._upper_ones
        filter_mask = self._filter_mask
        filter_shift = self._filter_shift
        reject_value = filter_mask if upper_eff else 0
        shift_step = 8 * step
        candidates: list[int] = []
        append = candidates.append
        rejected_align = rejected_compare = rejected_filter = 0
        shift = 0
        for _ in range(positions):
            word = (line_int >> shift) & word_mask
            shift += shift_step
            masked = word & addr_mask
            if masked & align_mask:
                rejected_align += 1
            elif masked >> compare_shift != upper_eff:
                rejected_compare += 1
            elif extreme and (
                not filter_mask
                or (masked >> filter_shift) & filter_mask == reject_value
            ):
                rejected_filter += 1
            else:
                append(word)
        stats = self.stats
        stats.words_examined += positions
        stats.candidates += len(candidates)
        stats.rejected_align += rejected_align
        stats.rejected_compare += rejected_compare
        stats.rejected_filter += rejected_filter
        return candidates

    def scan_reference(
        self, line_bytes: bytes, effective_vaddr: int
    ) -> list[int]:
        """Reference oracle: the original sequential word-by-word walk.

        Kept verbatim so the equivalence property test (and the perf
        benchmark's speedup measurement) have a known-good baseline.
        """
        candidates = []
        step = self.config.scan_step
        last = len(line_bytes) - self._word_size
        for offset in range(0, last + 1, step):
            word = int.from_bytes(
                line_bytes[offset:offset + self._word_size], "little"
            )
            if self.is_candidate(word, effective_vaddr):
                candidates.append(word)
        return candidates

    def prefetchable_range_bytes(self) -> int:
        """Size of the region reachable from one effective address.

        Increasing compare bits halves this range — the coverage/accuracy
        tradeoff discussed with Figure 7.
        """
        return 1 << self._compare_shift
