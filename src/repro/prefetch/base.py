"""Shared prefetcher types."""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.memory.address import ADDRESS_BITS, line_mask

__all__ = ["PrefetchKind", "PrefetchCandidate"]


class PrefetchKind(enum.Enum):
    """Why a prefetch candidate was generated."""

    #: The candidate address itself (a pointer found in a scanned line).
    CHAIN = "chain"
    #: A "wider" next-line prefetch following a candidate (Section 3.4.3).
    NEXT_LINE = "next"
    #: A previous-line prefetch (evaluated and rejected by Figure 9).
    PREV_LINE = "prev"
    #: A stride-predicted address.
    STRIDE = "stride"
    #: A Markov STAB successor.
    MARKOV = "markov"


class PrefetchCandidate(NamedTuple):
    """One address a prefetcher wants brought into the cache.

    A ``NamedTuple`` rather than a (frozen) dataclass: candidates are
    allocated once per matched pointer on every scanned fill, and tuple
    construction skips both the instance ``__dict__`` and the
    ``object.__setattr__`` calls frozen dataclasses pay per field.
    """

    vaddr: int
    depth: int
    kind: PrefetchKind
    # The effective address whose fill/scan produced this candidate; used
    # for chained scans (the new trigger) and for debugging.
    trigger_vaddr: int = 0

    def line(
        self, line_size: int = 64, address_bits: int = ADDRESS_BITS
    ) -> int:
        return self.vaddr & line_mask(line_size, address_bits)
