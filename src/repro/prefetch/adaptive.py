"""Adaptive (runtime) heuristic tuning — the paper's stated future work.

Section 4.1 closes with: "One area of research currently being investigated
by the authors is adaptive (runtime) heuristics for adjusting these
parameters."  This module implements a simple realisation of that idea: a
controller that watches the rolling accuracy of content prefetches and
nudges the filter-bit width up (more permissive, more coverage) when
accuracy is comfortably high, or down (stricter) when accuracy drops below
a floor.

The controller manipulates a live :class:`VirtualAddressMatcher` by
swapping in a matcher built from an adjusted :class:`ContentConfig`; the
prefetcher itself stays stateless.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.params import ContentConfig
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.matcher import VirtualAddressMatcher
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["AdaptiveStats", "AdaptiveController"]


@dataclass
class AdaptiveStats:
    windows: int = 0
    widenings: int = 0
    narrowings: int = 0
    last_accuracy: float = 0.0


class AdaptiveController:
    """Accuracy-driven filter-bit adjustment.

    Parameters
    ----------
    prefetcher:
        The live content prefetcher whose matcher is tuned in place.
    window:
        Number of completed (useful-or-not resolved) prefetches per
        adjustment decision.
    low_water / high_water:
        Accuracy thresholds: below *low_water* the filter narrows
        (fewer filter bits — stricter extreme-region matching); above
        *high_water* it widens.
    """

    MIN_FILTER_BITS = 0
    MAX_FILTER_BITS = 8

    def __init__(
        self,
        prefetcher: ContentPrefetcher,
        window: int = 512,
        low_water: float = 0.30,
        high_water: float = 0.70,
    ) -> None:
        if not 0.0 <= low_water < high_water <= 1.0:
            raise ValueError("require 0 <= low_water < high_water <= 1")
        self.prefetcher = prefetcher
        self.window = window
        self.low_water = low_water
        self.high_water = high_water
        self.stats = AdaptiveStats()
        self._useful = 0
        self._resolved = 0

    @property
    def filter_bits(self) -> int:
        return self.prefetcher.config.filter_bits

    def record_outcome(self, useful: bool) -> None:
        """Report that one content prefetch resolved (used or evicted)."""
        self._resolved += 1
        if useful:
            self._useful += 1
        if self._resolved >= self.window:
            self._adjust()

    def _adjust(self) -> None:
        accuracy = self._useful / self._resolved
        self.stats.windows += 1
        self.stats.last_accuracy = accuracy
        self._useful = 0
        self._resolved = 0
        config = self.prefetcher.config
        if accuracy < self.low_water and config.filter_bits > self.MIN_FILTER_BITS:
            self._retune(config, config.filter_bits - 1)
            self.stats.narrowings += 1
        elif accuracy > self.high_water and config.filter_bits < self.MAX_FILTER_BITS:
            self._retune(config, config.filter_bits + 1)
            self.stats.widenings += 1

    def _retune(self, config: ContentConfig, filter_bits: int) -> None:
        new_config = dataclasses.replace(config, filter_bits=filter_bits)
        self.prefetcher.config = new_config
        self.prefetcher.matcher = VirtualAddressMatcher(new_config)

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Rolling window counters (filter_bits travels with the prefetcher)."""
        return {
            "stats": dataclass_state(self.stats),
            "useful": self._useful,
            "resolved": self._resolved,
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        self._useful = state["useful"]
        self._resolved = state["resolved"]
