"""Markov prefetcher (the Section 5 comparison point).

"The Markov prefetch mechanism used in this paper is based on the 1-history
Markov model prefetcher implementation described in [Joseph & Grunwald
1997].  The prefetcher uses a State Transition Table (STAB) with a fan out
of four, and models the transition probabilities using the least recently
used (LRU) replacement algorithm."

The STAB maps an L2 miss line address to the (up to ``fanout``) miss line
addresses that have followed it, MRU-first.  On a miss the current address's
successors are all issued as prefetches, and the previous miss's successor
list is updated with the current address.

Stride/Markov sequencing (also per Section 5): the two prefetchers are
consulted sequentially with precedence to stride — if the stride prefetcher
issued for this reference, the Markov prefetcher is blocked.

Table 3 sizes the STAB in bytes; with 32-bit addresses an entry (tag + four
successors) is 20 bytes, giving ~26K entries for the 512 KB configuration
and ~6.5K for the 128 KB one.  ``unbounded=True`` models *markov_big*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.address import ADDRESS_BITS, line_mask
from repro.params import MarkovConfig
from repro.prefetch.base import PrefetchCandidate, PrefetchKind
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["MarkovStats", "MarkovPrefetcher"]


@dataclass
class MarkovStats:
    misses_observed: int = 0
    issued: int = 0
    entries_evicted: int = 0
    blocked_by_stride: int = 0
    training_updates: int = 0


class MarkovPrefetcher:
    """1-history Markov miss predictor with a bounded STAB."""

    def __init__(
        self,
        config: MarkovConfig,
        line_size: int = 64,
        address_bits: int = ADDRESS_BITS,
    ) -> None:
        self.config = config
        self.stats = MarkovStats()
        self._line_mask = line_mask(line_size, address_bits)
        self._stab: OrderedDict[int, list[int]] = OrderedDict()
        self._prev_miss: int | None = None

    @property
    def capacity(self) -> int | None:
        """Entry capacity, or ``None`` when unbounded (markov_big)."""
        if self.config.unbounded:
            return None
        return self.config.entries

    def __len__(self) -> int:
        return len(self._stab)

    def observe_miss(
        self, vaddr: int, stride_covered: bool = False
    ) -> list[PrefetchCandidate]:
        """Feed one L2 demand miss; returns Markov prefetch candidates.

        *stride_covered* indicates the stride prefetcher already issued for
        this reference, which blocks Markov issue (but training — the
        successor-list update — still happens, since the miss occurred).
        """
        if not self.config.enabled:
            return []
        line = vaddr & self._line_mask
        self.stats.misses_observed += 1
        self._train(line)
        self._prev_miss = line
        if stride_covered:
            self.stats.blocked_by_stride += 1
            return []
        successors = self._stab.get(line)
        if not successors:
            return []
        self._stab.move_to_end(line)
        candidates = [
            PrefetchCandidate(succ, 1, PrefetchKind.MARKOV, vaddr)
            for succ in successors
        ]
        self.stats.issued += len(candidates)
        return candidates

    def _train(self, line: int) -> None:
        prev = self._prev_miss
        if prev is None or prev == line:
            return
        successors = self._stab.get(prev)
        if successors is None:
            capacity = self.capacity
            if capacity is not None and len(self._stab) >= capacity:
                self._stab.popitem(last=False)
                self.stats.entries_evicted += 1
            successors = []
            self._stab[prev] = successors
        else:
            self._stab.move_to_end(prev)
        if line in successors:
            successors.remove(line)
        successors.insert(0, line)
        del successors[self.config.fanout:]
        self.stats.training_updates += 1

    def successors_of(self, vaddr: int) -> list[int]:
        """Current successor list for a line (test/debug helper)."""
        return list(self._stab.get(vaddr & self._line_mask, ()))

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """STAB entries in LRU order (successors MRU-first) + last miss."""
        return {
            "stats": dataclass_state(self.stats),
            "stab": [
                [line, list(successors)]
                for line, successors in self._stab.items()
            ],
            "prev_miss": self._prev_miss,
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        self._stab = OrderedDict(
            (line, list(successors)) for line, successors in state["stab"]
        )
        self._prev_miss = state["prev_miss"]
