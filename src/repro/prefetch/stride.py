"""Baseline hardware stride prefetcher.

Every configuration in the paper — including the baseline all speedups are
measured against — contains "a stride-based hardware prefetcher" that
"monitors all the L1 cache miss traffic and issues requests to the L2
arbiter" (Table 1, Figure 6).  The paper does not give its internals, so we
implement the classic Chen & Baer reference-prediction-table design the
text cites: a PC-indexed table of (last address, stride, confidence)
entries with LRU replacement; once the same stride repeats
``confidence_threshold`` times the prefetcher issues requests
``prefetch_distance`` strides ahead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.address import ADDRESS_BITS, address_mask, line_mask
from repro.params import StrideConfig
from repro.prefetch.base import PrefetchCandidate, PrefetchKind
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["StrideEntry", "StrideStats", "StridePrefetcher"]


@dataclass(slots=True)
class StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


@dataclass(slots=True)
class StrideStats:
    observations: int = 0
    issued: int = 0
    entries_evicted: int = 0


class StridePrefetcher:
    """PC-indexed reference prediction table."""

    __slots__ = (
        "config",
        "stats",
        "_addr_mask",
        "_line_mask",
        "_line_size",
        "_table",
    )

    def __init__(
        self,
        config: StrideConfig,
        line_size: int = 64,
        address_bits: int = ADDRESS_BITS,
    ) -> None:
        self.config = config
        self.stats = StrideStats()
        self._addr_mask = address_mask(address_bits)
        self._line_mask = line_mask(line_size, address_bits)
        self._line_size = line_size
        self._table: OrderedDict[int, StrideEntry] = OrderedDict()

    def observe(self, pc: int, vaddr: int) -> list[PrefetchCandidate]:
        """Feed one L1 miss; returns stride prefetch candidates (if any)."""
        if not self.config.enabled:
            return []
        self.stats.observations += 1
        entry = self._table.get(pc)
        if entry is None:
            self._insert(pc, StrideEntry(last_addr=vaddr))
            return []
        self._table.move_to_end(pc)
        stride = vaddr - entry.last_addr
        if stride == entry.stride and stride != 0:
            if entry.confidence < self.config.confidence_threshold:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = vaddr
        if entry.confidence < self.config.confidence_threshold:
            return []
        return self._issue(vaddr, entry.stride)

    def _issue(self, vaddr: int, stride: int) -> list[PrefetchCandidate]:
        candidates = []
        seen_lines = {vaddr & self._line_mask}
        for k in range(1, self.config.prefetch_distance + 1):
            target = (vaddr + k * stride) & self._addr_mask
            line = target & self._line_mask
            if line in seen_lines:
                continue
            seen_lines.add(line)
            candidates.append(
                PrefetchCandidate(
                    vaddr=target,
                    depth=1,
                    kind=PrefetchKind.STRIDE,
                    trigger_vaddr=vaddr,
                )
            )
            self.stats.issued += 1
        return candidates

    def would_cover(self, pc: int, vaddr: int) -> bool:
        """Non-mutating probe: would this PC's entry predict *vaddr*'s line?

        Used to compute the paper's *adjusted* coverage/accuracy, which
        subtracts content prefetches the stride prefetcher would also have
        issued (Figure 7).
        """
        entry = self._table.get(pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return False
        if entry.stride == 0:
            return False
        for k in range(1, self.config.prefetch_distance + 1):
            predicted = (entry.last_addr + k * entry.stride) & self._addr_mask
            if predicted & self._line_mask == vaddr & self._line_mask:
                return True
        return False

    def _insert(self, pc: int, entry: StrideEntry) -> None:
        if len(self._table) >= self.config.table_entries:
            self._table.popitem(last=False)
            self.stats.entries_evicted += 1
        self._table[pc] = entry

    def __len__(self) -> int:
        return len(self._table)

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Reference-prediction table in LRU order, plus counters."""
        return {
            "stats": dataclass_state(self.stats),
            "table": [
                [pc, entry.last_addr, entry.stride, entry.confidence]
                for pc, entry in self._table.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        self._table = OrderedDict(
            (pc, StrideEntry(last_addr, stride, confidence))
            for pc, last_addr, stride, confidence in state["table"]
        )
