"""The content-directed data prefetcher.

This class is deliberately *policy only*: it decides what to prefetch (by
scanning fill contents), when a chain terminates (depth threshold), when a
cache hit should reinforce a chain (rescan margin), and how wide to fetch
(previous/next lines).  Mechanism — translation, arbitration, cache fills,
timing — belongs to the simulators, mirroring the paper's split between the
predictor (Figure 5) and the memory-system microarchitecture (Figure 6).

Statelessness is the headline property: between fills the prefetcher keeps
*no* prediction state at all (``MatcherStats`` counters are observability
only).  The only persistent state the scheme needs is the ~2 depth bits per
L2 line, stored in the cache itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import dataclasses

from repro.memory.address import address_mask, line_mask
from repro.params import ContentConfig
from repro.prefetch.base import PrefetchCandidate, PrefetchKind
from repro.prefetch.matcher import VirtualAddressMatcher
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["ContentStats", "ContentPrefetcher"]

# Hot-loop aliases: enum member lookups are class-dict accesses.
_KIND_CHAIN = PrefetchKind.CHAIN
_KIND_PREV = PrefetchKind.PREV_LINE
_KIND_NEXT = PrefetchKind.NEXT_LINE


@dataclass(slots=True)
class ContentStats:
    lines_scanned: int = 0
    rescans: int = 0
    chain_candidates: int = 0
    width_candidates: int = 0
    chains_terminated_by_depth: int = 0


class ContentPrefetcher:
    """Scans fill contents and emits prefetch candidates."""

    __slots__ = (
        "_config",
        "matcher",
        "stats",
        "_line_size",
        "_addr_mask",
        "_line_mask",
        "_enabled",
        "_depth_threshold",
        "_rescan_on",
        "_rescan_margin",
        "_prev_lines",
        "_next_lines",
    )

    def __init__(self, config: ContentConfig, line_size: int = 64) -> None:
        self.config = config
        self.matcher = VirtualAddressMatcher(config)
        self.stats = ContentStats()
        self._line_size = line_size
        self._addr_mask = address_mask(config.address_bits)
        self._line_mask = line_mask(line_size, config.address_bits)

    @property
    def config(self) -> ContentConfig:
        return self._config

    @config.setter
    def config(self, config: ContentConfig) -> None:
        # The policy knobs consulted on every scan/hit are cached as flat
        # attributes; routing assignment through this setter keeps them
        # coherent when the adaptive controller swaps the config object
        # mid-run (it retunes filter_bits, preserving these fields).
        self._config = config
        self._enabled = config.enabled
        self._depth_threshold = config.depth_threshold
        self._rescan_on = config.reinforcement and config.enabled
        self._rescan_margin = config.rescan_margin
        self._prev_lines = config.prev_lines
        self._next_lines = config.next_lines

    # -- depth bookkeeping ----------------------------------------------------

    @property
    def depth_bits(self) -> int:
        """Bits of per-line storage needed to encode the depth threshold."""
        return max(1, self.config.depth_threshold.bit_length())

    @property
    def space_overhead(self) -> float:
        """Fraction of L2 space consumed by the depth bits (paper: <0.5%)."""
        return self.depth_bits / (8.0 * self._line_size)

    def clamp_depth(self, depth: int) -> int:
        """Depths saturate at what the per-line bits can encode."""
        return min(depth, (1 << self.depth_bits) - 1)

    # -- scanning ---------------------------------------------------------------

    def scan_fill(
        self,
        line_vaddr: int,
        line_bytes: bytes,
        effective_vaddr: int,
        depth: int,
        is_rescan: bool = False,
    ) -> list[PrefetchCandidate]:
        """Scan one filled (or reinforced) cache line.

        Parameters
        ----------
        line_vaddr:
            Virtual base address of the scanned line.
        line_bytes:
            The line's data, as delivered by the fill.
        effective_vaddr:
            Effective address of the request that triggered the fill — the
            reference point for the compare bits.
        depth:
            Request depth of the fill being scanned (demand = 0).  The
            candidates produced get ``depth + 1``; if that exceeds the
            depth threshold the chain is terminated and nothing is
            returned ("Line D is not scanned", Figure 3).

        Returns the candidate list in line-scan order; chain candidates are
        followed by their width (previous/next line) companions.
        """
        if not self._enabled:
            return []
        next_depth = depth + 1
        if next_depth > self._depth_threshold:
            self.stats.chains_terminated_by_depth += 1
            return []
        self.stats.lines_scanned += 1
        if is_rescan:
            self.stats.rescans += 1
        pointers = self.matcher.scan(line_bytes, effective_vaddr)
        if not pointers:
            return []
        candidates: list[PrefetchCandidate] = []
        emitted_lines: set[int] = {line_vaddr & self._line_mask}
        for pointer in pointers:
            self._emit(pointer, next_depth, emitted_lines, candidates)
        return candidates

    def _emit(
        self,
        pointer: int,
        depth: int,
        emitted_lines: set[int],
        out: list[PrefetchCandidate],
    ) -> None:
        line = pointer & self._line_mask
        stats = self.stats
        add = emitted_lines.add
        append = out.append
        if line not in emitted_lines:
            add(line)
            append(
                PrefetchCandidate(pointer, depth, _KIND_CHAIN, pointer)
            )
            stats.chain_candidates += 1
        # Width companions, inline (this is called once per matched
        # pointer on every scanned fill): semantics identical to
        # _emit_width, which is kept for targeted tests.
        line_size = self._line_size
        addr_mask = self._addr_mask
        width_candidates = 0
        for k in range(1, self._prev_lines + 1):
            width = (line - k * line_size) & addr_mask
            if width not in emitted_lines:
                add(width)
                append(
                    PrefetchCandidate(width, depth, _KIND_PREV, pointer)
                )
                width_candidates += 1
        for k in range(1, self._next_lines + 1):
            width = (line + k * line_size) & addr_mask
            if width not in emitted_lines:
                add(width)
                append(
                    PrefetchCandidate(width, depth, _KIND_NEXT, pointer)
                )
                width_candidates += 1
        if width_candidates:
            stats.width_candidates += width_candidates

    def _emit_width(
        self,
        line: int,
        depth: int,
        kind: PrefetchKind,
        trigger: int,
        emitted_lines: set[int],
        out: list[PrefetchCandidate],
    ) -> None:
        line &= self._addr_mask
        if line in emitted_lines:
            return
        emitted_lines.add(line)
        out.append(PrefetchCandidate(line, depth, kind, trigger))
        self.stats.width_candidates += 1

    # -- reinforcement policy ------------------------------------------------------

    def should_rescan(self, stored_depth: int, incoming_depth: int) -> bool:
        """Does a hit at *incoming_depth* reinforce a line at *stored_depth*?

        Figure 4(b): rescan whenever the incoming request's depth is lower
        than the stored depth (margin 1).  Figure 4(c): "re-establishing a
        chain only when the incoming depth is at least two fewer than the
        stored depth" (margin 2) halves the rescan count.
        """
        return (
            self._rescan_on
            and incoming_depth <= stored_depth - self._rescan_margin
        )

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Counters plus the live filter width.

        The predictor itself is stateless (the paper's headline property),
        but the :class:`~repro.prefetch.adaptive.AdaptiveController` may
        have retuned ``filter_bits`` mid-run — the current value must
        survive a resume or the matcher diverges.
        """
        return {
            "stats": dataclass_state(self.stats),
            "matcher_stats": dataclass_state(self.matcher.stats),
            "filter_bits": self.config.filter_bits,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["filter_bits"] != self.config.filter_bits:
            self.config = dataclasses.replace(
                self.config, filter_bits=state["filter_bits"]
            )
            self.matcher = VirtualAddressMatcher(self.config)
        load_dataclass_state(self.stats, state["stats"])
        load_dataclass_state(self.matcher.stats, state["matcher_stats"])
