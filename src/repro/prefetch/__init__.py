"""Prefetcher implementations.

* :class:`~repro.prefetch.stride.StridePrefetcher` — the baseline hardware
  stride prefetcher every configuration includes (Section 2.1).
* :class:`~repro.prefetch.matcher.VirtualAddressMatcher` — the pointer
  recognition heuristic (compare / filter / align bits, scan step).
* :class:`~repro.prefetch.content.ContentPrefetcher` — the paper's
  contribution: stateless content-directed prefetching with chaining,
  feedback-directed path reinforcement, and deeper-vs-wider control.
* :class:`~repro.prefetch.markov.MarkovPrefetcher` — the Section 5
  comparison point (1-history Markov STAB, fanout 4).
* :class:`~repro.prefetch.adaptive.AdaptiveController` — the runtime
  heuristic-tuning extension sketched in Section 4.1's future work.
* :class:`~repro.prefetch.stream.StreamBufferPrefetcher` — Jouppi stream
  buffers (reference [11]), for extended baseline comparisons.
"""

from repro.prefetch.base import PrefetchCandidate, PrefetchKind
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.dependence import DependencePrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.matcher import VirtualAddressMatcher
from repro.prefetch.stream import StreamBufferPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "ContentPrefetcher",
    "DependencePrefetcher",
    "MarkovPrefetcher",
    "PrefetchCandidate",
    "PrefetchKind",
    "StreamBufferPrefetcher",
    "StridePrefetcher",
    "VirtualAddressMatcher",
]
