"""Dependence-based prefetching (Roth, Moshovos & Sohi — reference [12]).

The paper positions content-directed prefetching against this scheme: a
*stateful* predictor that learns producer→consumer load pairs ("the value
loaded by instruction P becomes the base address of instruction C") and,
on seeing P complete, prefetches C's address.  Unlike CDP it needs a
correlation table and a training pass, but it only prefetches addresses a
load will *actually* compute — high accuracy, no junk.

Mechanism (1-level simplification of the ISCA'98 design):

* a small FIFO of recently loaded values (the *potential producer
  window*) keyed by value;
* when a load's base address matches ``recent value + small offset``, a
  correlation ``producer PC -> (consumer PC, offset)`` is recorded in the
  correlation table (LRU, bounded);
* when a load whose PC has correlations completes with value *v*, the
  prefetcher issues ``v + offset`` for each correlated consumer.

The simulators do not feed load values through their demand paths, so the
comparison experiment uses :func:`simulate_value_coverage`, a value-aware
functional cache pass reading true values from the backing memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.memory.address import ADDRESS_BITS, address_mask, line_mask
from repro.prefetch.base import PrefetchCandidate, PrefetchKind

__all__ = [
    "DependenceStats",
    "DependencePrefetcher",
    "simulate_value_coverage",
]


@dataclass
class DependenceStats:
    loads_observed: int = 0
    correlations_learned: int = 0
    issued: int = 0
    entries_evicted: int = 0


class DependencePrefetcher:
    """Producer→consumer load-pair correlation predictor."""

    def __init__(
        self,
        table_entries: int = 256,
        window: int = 32,
        max_offset: int = 128,
        fanout: int = 2,
        address_bits: int = ADDRESS_BITS,
    ) -> None:
        if table_entries <= 0 or window <= 0 or fanout <= 0:
            raise ValueError("table/window/fanout must be positive")
        self._addr_mask = address_mask(address_bits)
        self.table_entries = table_entries
        self.window = window
        self.max_offset = max_offset
        self.fanout = fanout
        self.stats = DependenceStats()
        # value -> producer pc, most recent last (FIFO window).
        self._recent: OrderedDict[int, int] = OrderedDict()
        # producer pc -> list of (consumer pc, offset), MRU-first.
        self._table: OrderedDict[int, list] = OrderedDict()

    def observe_load(
        self, pc: int, vaddr: int, value: int
    ) -> list[PrefetchCandidate]:
        """Feed one completed load; returns dependence prefetches."""
        self.stats.loads_observed += 1
        self._learn(pc, vaddr)
        candidates = self._predict(pc, value)
        self._remember(value, pc)
        return candidates

    # -- learning ------------------------------------------------------------

    def _learn(self, consumer_pc: int, vaddr: int) -> None:
        for value, producer_pc in self._recent.items():
            offset = vaddr - value
            if 0 <= offset < self.max_offset:
                self._record(producer_pc, consumer_pc, offset)
                return

    def _record(self, producer: int, consumer: int, offset: int) -> None:
        entry = self._table.get(producer)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
                self.stats.entries_evicted += 1
            entry = []
            self._table[producer] = entry
        else:
            self._table.move_to_end(producer)
        pair = (consumer, offset)
        if pair in entry:
            entry.remove(pair)
        entry.insert(0, pair)
        del entry[self.fanout:]
        self.stats.correlations_learned += 1

    def _remember(self, value: int, pc: int) -> None:
        if value == 0:
            return
        self._recent[value] = pc
        self._recent.move_to_end(value)
        while len(self._recent) > self.window:
            self._recent.popitem(last=False)

    # -- prediction ------------------------------------------------------------

    def _predict(self, pc: int, value: int) -> list[PrefetchCandidate]:
        entry = self._table.get(pc)
        if not entry or value == 0:
            return []
        self._table.move_to_end(pc)
        candidates = [
            PrefetchCandidate(
                (value + offset) & self._addr_mask, 1, PrefetchKind.CHAIN,
                trigger_vaddr=value,
            )
            for _, offset in entry
        ]
        self.stats.issued += len(candidates)
        return candidates

    def correlations_of(self, producer_pc: int) -> list:
        """Current (consumer, offset) list for a PC (test helper)."""
        return list(self._table.get(producer_pc, ()))


def simulate_value_coverage(workload, config, prefetcher=None, warmup_uops=0):
    """Value-aware functional pass: dependence-prefetch coverage/accuracy.

    Runs the trace through an L2-only functional cache, feeding each
    load's *true value* (read from the backing memory) to the dependence
    prefetcher, and returns a dict with ``misses``, ``issued``,
    ``useful``, ``coverage`` and ``accuracy`` — directly comparable to the
    content prefetcher's functional metrics.
    """
    from repro.cache.line import Requester
    from repro.cache.setassoc import SetAssociativeCache
    from repro.trace.ops import LOAD

    if prefetcher is None:
        prefetcher = DependencePrefetcher()
    cache = SetAssociativeCache(config.ul2, name="UL2")
    memory = workload.memory
    mask = line_mask(config.line_size, config.content.address_bits)
    counted: set = set()
    misses = issued = useful = 0
    uops_seen = 0
    measuring = warmup_uops == 0
    for op in workload.trace.ops:
        uops_seen += op[1] if op[0] == 2 else 1
        if not measuring and uops_seen >= warmup_uops:
            measuring = True
        if op[0] != LOAD:
            continue
        vaddr = op[1]
        line = cache.lookup(vaddr)
        if line is None:
            if measuring:
                misses += 1
            cache.fill(vaddr, requester=Requester.DEMAND)
            counted.discard(vaddr & mask)
        elif line.was_prefetched and not line.referenced:
            line.promote(0, Requester.DEMAND)
            if measuring and (vaddr & mask) in counted:
                useful += 1
                counted.discard(vaddr & mask)
        value = memory.read_word(vaddr)
        for candidate in prefetcher.observe_load(op[2], vaddr, value):
            line_addr = candidate.vaddr & mask
            if cache.peek(line_addr) is None:
                cache.fill(line_addr, requester=Requester.CONTENT)
                if measuring:
                    issued += 1
                    counted.add(line_addr)
    would_miss = misses + useful
    return {
        "misses": misses,
        "issued": issued,
        "useful": useful,
        "coverage": useful / would_miss if would_miss else 0.0,
        "accuracy": useful / issued if issued else 0.0,
        "stats": prefetcher.stats,
    }
