"""Machine-configuration serialization (JSON).

Lets experiment configurations live in version-controlled files::

    config = load_machine_config("machines/paper.json")
    save_machine_config(config.with_content(depth_threshold=5), "deep.json")

The JSON layout mirrors the dataclass structure: one object per component,
omitted fields take the Table 1 defaults.
"""

from __future__ import annotations

import dataclasses
import json

from repro.params import (
    BusConfig,
    CacheConfig,
    ContentConfig,
    CoreConfig,
    FaultConfig,
    MachineConfig,
    MarkovConfig,
    StrideConfig,
    TLBConfig,
)

__all__ = [
    "machine_config_to_dict",
    "machine_config_from_dict",
    "save_machine_config",
    "load_machine_config",
]

_COMPONENTS = {
    "core": CoreConfig,
    "l1d": CacheConfig,
    "ul2": CacheConfig,
    "dtlb": TLBConfig,
    "bus": BusConfig,
    "stride": StrideConfig,
    "content": ContentConfig,
    "markov": MarkovConfig,
    "faults": FaultConfig,
}


def machine_config_to_dict(config: MachineConfig) -> dict:
    """Convert a :class:`MachineConfig` to plain nested dicts."""
    return {
        name: dataclasses.asdict(getattr(config, name))
        for name in _COMPONENTS
    }


def machine_config_from_dict(data: dict) -> MachineConfig:
    """Build a :class:`MachineConfig` from (possibly partial) dicts.

    Unknown component or field names raise ``ValueError`` — a silently
    ignored typo in a config file is worse than an error.
    """
    kwargs = {}
    unknown = set(data) - set(_COMPONENTS)
    if unknown:
        raise ValueError(
            "unknown machine components: %s" % ", ".join(sorted(unknown))
        )
    for name, cls in _COMPONENTS.items():
        if name not in data:
            continue
        component = data[name]
        if not isinstance(component, dict):
            raise ValueError(
                "component %r must be an object, got %s"
                % (name, type(component).__name__)
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        bad = set(component) - fields
        if bad:
            raise ValueError(
                "unknown fields for %s: %s" % (name, ", ".join(sorted(bad)))
            )
        if name in ("l1d", "ul2"):
            # CacheConfig has required fields; merge over the defaults.
            defaults = dataclasses.asdict(getattr(MachineConfig(), name))
            defaults.update(component)
            component = defaults
        kwargs[name] = cls(**component)
    return MachineConfig(**kwargs)


def save_machine_config(config: MachineConfig, path: str) -> None:
    """Write *config* to *path* as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(machine_config_to_dict(config), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_machine_config(path: str) -> MachineConfig:
    """Read a machine configuration from a JSON file.

    Malformed files raise :class:`ValueError` naming the offending path —
    a config typo must not surface as a bare ``json.JSONDecodeError`` (or
    worse, an ``AttributeError`` off a non-dict top level) deep inside an
    experiment sweep.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                "machine config %r is not valid JSON: %s" % (path, exc)
            ) from exc
    if not isinstance(data, dict):
        raise ValueError(
            "machine config %r must contain a JSON object at the top "
            "level, got %s" % (path, type(data).__name__)
        )
    return machine_config_from_dict(data)
