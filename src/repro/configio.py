"""Machine-configuration serialization (JSON).

Lets experiment configurations live in version-controlled files::

    config = load_machine_config("machines/paper.json")
    save_machine_config(config.with_content(depth_threshold=5), "deep.json")

The JSON layout mirrors the dataclass structure: one object per component,
omitted fields take the Table 1 defaults.
"""

from __future__ import annotations

import dataclasses
import json

from repro.params import (
    BusConfig,
    CacheConfig,
    ContentConfig,
    CoreConfig,
    FaultConfig,
    MachineConfig,
    MarkovConfig,
    StrideConfig,
    TLBConfig,
)

__all__ = [
    "canonical_machine_dict",
    "machine_config_to_dict",
    "machine_config_from_dict",
    "save_machine_config",
    "load_machine_config",
]

_COMPONENTS = {
    "core": CoreConfig,
    "l1d": CacheConfig,
    "ul2": CacheConfig,
    "dtlb": TLBConfig,
    "bus": BusConfig,
    "stride": StrideConfig,
    "content": ContentConfig,
    "markov": MarkovConfig,
    "faults": FaultConfig,
}


def _normalized_fields(cls, component: dict) -> dict:
    """Coerce field values to their declared numeric types.

    JSON (and hand-written config dicts) blur ``1`` / ``1.0``; a
    float-typed field loaded as an int would survive dataclass
    construction but produce a *different* canonical form — and thus a
    different content-address — than the same machine written with a
    float.  Dedup keying (:mod:`repro.service`) requires normalizing a
    config to be idempotent, so numeric types are pinned here.
    """
    types = {f.name: f.type for f in dataclasses.fields(cls)}
    normalized = {}
    for key, value in component.items():
        declared = types.get(key)
        declared = getattr(declared, "__name__", declared)  # str under PEP 563
        if isinstance(value, bool):
            pass  # bool is an int subclass; never silently demote it
        elif declared == "float" and isinstance(value, int):
            value = float(value)
        elif declared == "int" and isinstance(value, float) and value.is_integer():
            value = int(value)
        normalized[key] = value
    return normalized


def machine_config_to_dict(config: MachineConfig) -> dict:
    """Convert a :class:`MachineConfig` to plain nested dicts."""
    return {
        name: dataclasses.asdict(getattr(config, name))
        for name in _COMPONENTS
    }


#: Fields that still key the canonical form when the component is
#: disabled.  Everything else in a disabled prefetcher/fault component is
#: a tuning knob the simulators provably never read (the engine checks
#: ``enabled`` first), so the canonical form masks it to its default —
#: every disabled-content baseline of a knob sweep then shares one
#: content address.  ``address_bits``/``word_size`` stay keyed: they
#: shape address masking and pointer scanning structurally, not just the
#: prefetcher's heuristics.
_KEYED_WHEN_DISABLED = {
    "stride": {"enabled"},
    "content": {"enabled", "address_bits", "word_size"},
    "markov": {"enabled"},
    "faults": {"enabled"},
}


def canonical_machine_dict(config: MachineConfig) -> dict:
    """Normalized, default-filled dict form of *config*.

    The canonical form is what content-addressing hashes: two configs
    describing the same machine — whatever mix of ints-for-floats,
    load/dump round-trips, or leftover knobs on disabled components
    produced them — yield byte-identical canonical trees
    (``digest(load(dump(c))) == digest(c)``).
    """
    canonical = {}
    for name, cls in _COMPONENTS.items():
        component = _normalized_fields(
            cls, dataclasses.asdict(getattr(config, name))
        )
        keyed = _KEYED_WHEN_DISABLED.get(name)
        if keyed is not None and component.get("enabled") is False:
            defaults = _normalized_fields(cls, dataclasses.asdict(cls()))
            component = {
                key: value if key in keyed else defaults[key]
                for key, value in component.items()
            }
        canonical[name] = component
    return canonical


def machine_config_from_dict(data: dict) -> MachineConfig:
    """Build a :class:`MachineConfig` from (possibly partial) dicts.

    Unknown component or field names raise ``ValueError`` — a silently
    ignored typo in a config file is worse than an error.
    """
    kwargs = {}
    unknown = set(data) - set(_COMPONENTS)
    if unknown:
        raise ValueError(
            "unknown machine components: %s" % ", ".join(sorted(unknown))
        )
    for name, cls in _COMPONENTS.items():
        if name not in data:
            continue
        component = data[name]
        if not isinstance(component, dict):
            raise ValueError(
                "component %r must be an object, got %s"
                % (name, type(component).__name__)
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        bad = set(component) - fields
        if bad:
            raise ValueError(
                "unknown fields for %s: %s" % (name, ", ".join(sorted(bad)))
            )
        component = _normalized_fields(cls, component)
        if name in ("l1d", "ul2"):
            # CacheConfig has required fields; merge over the defaults.
            defaults = dataclasses.asdict(getattr(MachineConfig(), name))
            defaults.update(component)
            component = defaults
        kwargs[name] = cls(**component)
    return MachineConfig(**kwargs)


def save_machine_config(config: MachineConfig, path: str) -> None:
    """Write *config* to *path* as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(machine_config_to_dict(config), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def load_machine_config(path: str) -> MachineConfig:
    """Read a machine configuration from a JSON file.

    Malformed files raise :class:`ValueError` naming the offending path —
    a config typo must not surface as a bare ``json.JSONDecodeError`` (or
    worse, an ``AttributeError`` off a non-dict top level) deep inside an
    experiment sweep.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                "machine config %r is not valid JSON: %s" % (path, exc)
            ) from exc
    if not isinstance(data, dict):
        raise ValueError(
            "machine config %r must contain a JSON object at the top "
            "level, got %s" % (path, type(data).__name__)
        )
    return machine_config_from_dict(data)
