"""Graceful-degradation curve: speedup vs injected fault intensity.

The paper argues the content prefetcher degrades gracefully: junk
candidates are filtered by the failing page walk, squashed by the
priority arbiters, and never stall demand traffic.  This sweep stresses
that claim directly — every supported fault type (dropped/delayed bus
grants, DTLB drops and miss storms, matcher-passing corrupted fill data,
MSHR exhaustion bursts, prefetch thrash) is injected at increasing
intensity (see :func:`repro.faults.fault_storm`) and each run is
validated by the full invariant checker: the simulator must either
complete with conserved prefetch accounting or raise
``SimulationIntegrityError``.

Expected shape: speedup over the fault-free stride baseline decays
smoothly toward (and below) 1.0 as intensity rises; no cliff, no crash,
no accounting leak.  The content machine under faults should stay close
to the *baseline* machine under the same faults — the prefetcher's junk
must not amplify the damage.
"""

from __future__ import annotations

from repro.core.simulator import TimingSimulator
from repro.experiments.common import (
    ExperimentResult,
    model_machine,
    warmup_uops_for,
)
from repro.faults import fault_storm
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["INTENSITIES", "BENCHMARKS", "run"]

INTENSITIES = (0.0, 0.1, 0.25, 0.5, 1.0)

#: A pointer-chasing and a server representative keep the sweep fast while
#: covering both chain-bound and capacity-bound behaviour.
BENCHMARKS = ("b2c", "tpcc-2")


def run(
    scale: float = 0.05,
    benchmarks=BENCHMARKS,
    intensities=INTENSITIES,
    seed: int = 1,
) -> ExperimentResult:
    workloads = {
        name: build_benchmark(name, scale=scale, seed=seed)
        for name in benchmarks
    }
    base_config = model_machine()
    baseline_config = base_config.with_content(enabled=False)
    # The fault-free stride-only baseline anchors every speedup.
    baselines = {}
    for name, workload in workloads.items():
        simulator = TimingSimulator(
            baseline_config, workload.memory, check_invariants=True
        )
        baselines[name] = simulator.run(
            workload.trace, warmup_uops_for(workload.trace)
        )
    rows = []
    curve: dict = {}
    for intensity in intensities:
        faults = fault_storm(intensity, seed=seed)
        config = base_config.replace(faults=faults)
        speedups = {}
        injected = 0
        for name, workload in workloads.items():
            simulator = TimingSimulator(
                config, workload.memory, check_invariants=True
            )
            result = simulator.run(
                workload.trace, warmup_uops_for(workload.trace)
            )
            assert result.integrity_verified
            speedups[name] = result.speedup_over(baselines[name])
            injected += sum(result.fault_injections.values())
        mean = arithmetic_mean(speedups.values())
        curve[intensity] = mean
        rows.append(
            ["%.2f" % intensity]
            + ["%.4f" % speedups[name] for name in benchmarks]
            + ["%.4f" % mean, str(injected)]
        )
    return ExperimentResult(
        experiment_id="faultsweep",
        title="Fault sweep: speedup vs injected fault intensity",
        headers=["intensity"] + list(benchmarks) + ["mean", "faults"],
        rows=rows,
        notes=(
            "Every run passed the invariant checker (accounting "
            "conservation, MSHR leak-freedom, depth bounds).  Expected: "
            "smooth decay with no cliff — the graceful-degradation claim."
        ),
        extra={"curve": curve},
    )
