"""Figure 11 — Markov vs content prefetcher performance comparison.

Four machines, all measured against the 1 MB-UL2 stride-only baseline:

* ``markov_1/8`` — one way of the UL2 reallocated to the STAB
  (896 KB 7-way UL2 + 128 KB STAB);
* ``markov_1/2`` — an even split (512 KB 8-way UL2 + 512 KB STAB);
* ``markov_big`` — full 1 MB UL2 plus an *unbounded* STAB (the Markov
  upper bound);
* ``content`` — full 1 MB UL2 plus the content prefetcher (no extra
  storage beyond the per-line depth bits).

Expected shape: the resource-split Markov configurations cannot recover
the performance lost to the smaller UL2 (they can land *below* 1.0);
markov_big gains a few percent (it must still train before it can issue,
and with a 1 MB cache the training data often still resides in the cache);
the content prefetcher — training-free, able to mask compulsory misses —
beats every Markov configuration by a wide margin (paper: ~3x).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    MODEL_SILICON_SCALE,
    REPRESENTATIVES,
    model_machine,
    timing_speedups,
)
from repro.params import KB, CacheConfig
from repro.stats.metrics import arithmetic_mean

__all__ = ["MARKOV_CONFIGS", "run"]


def _build_configs() -> dict:
    """Table 3's configurations at the experiments' 1/8 silicon scale.

    Paper sizes / MODEL_SILICON_SCALE: markov_1/2 splits the model's
    128 KB UL2 into 64 KB cache + 64 KB STAB; markov_1/8 reallocates one
    way (112 KB 7-way cache + 16 KB STAB).
    """
    base = model_machine()
    l2_latency = base.ul2.latency
    full_l2 = base.ul2.size_bytes
    markov_18 = (
        base.with_content(enabled=False)
        .replace(ul2=CacheConfig(
            full_l2 * 7 // 8, 7, latency=l2_latency
        ))
        .with_markov(
            enabled=True,
            stab_size_bytes=128 * KB // MODEL_SILICON_SCALE,
        )
    )
    markov_12 = (
        base.with_content(enabled=False)
        .replace(ul2=CacheConfig(full_l2 // 2, 8, latency=l2_latency))
        .with_markov(
            enabled=True,
            stab_size_bytes=512 * KB // MODEL_SILICON_SCALE,
        )
    )
    markov_big = (
        base.with_content(enabled=False)
        .with_markov(enabled=True, unbounded=True)
    )
    content = base  # stride + tuned content prefetcher, full model UL2
    return {
        "markov_1/8": markov_18,
        "markov_1/2": markov_12,
        "markov_big": markov_big,
        "content": content,
    }


MARKOV_CONFIGS = _build_configs()


def run(
    scale: float = 0.1,
    benchmarks=REPRESENTATIVES,
    seed: int = 1,
) -> ExperimentResult:
    baseline_config = (
        model_machine().with_content(enabled=False).with_markov(enabled=False)
    )
    baseline_cache: dict = {}
    rows = []
    means = {}
    for label, config in MARKOV_CONFIGS.items():
        speedups = timing_speedups(
            config, benchmarks, scale, seed=seed,
            baseline_config=baseline_config,
            baseline_cache=baseline_cache,
        )
        mean = arithmetic_mean(speedups.values())
        means[label] = mean
        rows.append([label, "%.4f" % mean, "%+.1f%%" % (100 * (mean - 1.0))])
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            "Figure 11: Average speedup, Markov vs content prefetcher "
            "(relative to 1 MB UL2 + stride baseline)"
        ),
        headers=["configuration", "mean speedup", "gain"],
        rows=rows,
        notes=(
            "Expected: resource-split Markov configurations underperform "
            "(possibly below 1.0); markov_big gains a few percent; the "
            "content prefetcher wins by a wide margin."
        ),
        extra={"means": means},
    )
