"""Design-choice ablations beyond the paper's headline figures.

Three studies the paper discusses qualitatively, quantified here:

* **placement** — on-chip (DTLB access + cache feedback) vs off-chip
  (candidates without a cached translation are dropped, Section 3.2);
* **rescan margin** — Figure 4(b)'s rescan-on-any-lower-depth vs
  Figure 4(c)'s margin-2 variant that halves the rescan count;
* **adaptive tuning** — the Section 4.1 future-work runtime controller
  that adjusts filter bits from observed accuracy;
* **prefetch buffer** — filling a small dedicated buffer instead of the
  UL2: pollution-immune, but far less capacity for running ahead (the
  design the paper's direct-fill choice competes with).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    run_timing,
    timing_speedups,
)
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["run"]


def run(
    scale: float = 0.1,
    benchmarks=REPRESENTATIVES,
    seed: int = 1,
) -> ExperimentResult:
    base = model_machine()
    baseline_cache: dict = {}
    variants = {
        "onchip (paper)": base,
        "offchip": base.with_content(placement="offchip"),
        "rescan margin 2 (Fig 4c)": base.with_content(rescan_margin=2),
        "no reinforcement": base.with_content(reinforcement=False),
        "prefetch buffer (32)": base.with_content(fill_target="buffer"),
    }
    rows = []
    means = {}
    rescans = {}
    for label, config in variants.items():
        speedups = timing_speedups(
            config, benchmarks, scale, seed=seed,
            baseline_cache=baseline_cache,
        )
        mean = arithmetic_mean(speedups.values())
        means[label] = mean
        # Re-run one benchmark to sample the rescan count for the margin
        # comparison (timing_speedups does not expose per-run results).
        sample = run_timing(
            config, build_benchmark(benchmarks[0], scale=scale, seed=seed)
        )
        rescans[label] = sample.rescans
        rows.append([
            label, "%.4f" % mean, "%+.1f%%" % (100 * (mean - 1.0)),
            str(sample.rescans),
        ])
    # Adaptive controller variant (runs through run_timing's adaptive path).
    adaptive_speedups = []
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        baseline = baseline_cache[name]
        enhanced = run_timing(base, workload, adaptive=True)
        adaptive_speedups.append(enhanced.speedup_over(baseline))
    mean = arithmetic_mean(adaptive_speedups)
    means["adaptive filter tuning"] = mean
    rows.append([
        "adaptive filter tuning", "%.4f" % mean,
        "%+.1f%%" % (100 * (mean - 1.0)), "-",
    ])
    return ExperimentResult(
        experiment_id="ablation",
        title="Ablations: placement, rescan margin, adaptive tuning",
        headers=["variant", "mean speedup", "gain", "rescans (sample)"],
        rows=rows,
        notes=(
            "Expected: off-chip loses part of the gain (untranslatable "
            "candidates dropped); margin 2 roughly halves rescans at "
            "similar speedup; adaptive tuning tracks the hand-tuned "
            "configuration."
        ),
        extra={"means": means, "rescans": rescans},
    )
