"""Figure 7 — adjusted coverage/accuracy vs compare.filter bits.

Sweeps the virtual-address-matching predictor's compare and filter bit
counts over the paper's 21 configurations (08.0 through 12.4) and reports
suite-average *adjusted* coverage and accuracy (content prefetches the
stride prefetcher would also have issued are subtracted).

Expected shape: accuracy rises with more compare bits (stricter matching,
fewer false pointers) while coverage falls (each extra compare bit halves
the prefetchable range); the paper picks 8 compare / 4 filter bits as the
knee.  Tuning runs use pure chain prefetching (no next-line width), the
configuration under study in Section 4.1.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    run_functional,
)
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["PAPER_SWEEP", "run"]

# The paper's horizontal axis: (compare bits, filter bits) as "NN.M".
PAPER_SWEEP = (
    (8, 0), (8, 2), (8, 4), (8, 6), (8, 8),
    (9, 0), (9, 1), (9, 3), (9, 5), (9, 7),
    (10, 0), (10, 2), (10, 4), (10, 6),
    (11, 0), (11, 1), (11, 3), (11, 5),
    (12, 0), (12, 2), (12, 4),
)


def run(
    scale: float = 0.25,
    benchmarks=REPRESENTATIVES,
    sweep=PAPER_SWEEP,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    series = {}
    for compare_bits, filter_bits in sweep:
        config = model_machine().with_content(
            compare_bits=compare_bits,
            filter_bits=filter_bits,
            next_lines=0,
            prev_lines=0,
        )
        coverages = []
        accuracies = []
        for name in benchmarks:
            workload = build_benchmark(name, scale=scale, seed=seed)
            result = run_functional(config, workload)
            coverages.append(result.adjusted_content_coverage)
            accuracies.append(result.adjusted_content_accuracy)
        label = "%02d.%d" % (compare_bits, filter_bits)
        coverage = arithmetic_mean(coverages)
        accuracy = arithmetic_mean(accuracies)
        series[label] = (coverage, accuracy)
        rows.append([
            label, "%.1f%%" % (100 * coverage), "%.1f%%" % (100 * accuracy)
        ])
    return ExperimentResult(
        experiment_id="fig7",
        title=(
            "Figure 7: Adjusted prefetch coverage and accuracy "
            "(compare and filter bits)"
        ),
        headers=["compare.filter", "adjusted coverage", "adjusted accuracy"],
        rows=rows,
        notes=(
            "Expected: coverage falls and accuracy rises as compare bits "
            "increase; 08.4 is the paper's coverage/accuracy tradeoff."
        ),
        extra={"series": series},
    )
