"""ASCII-chart rendering for experiment results (CLI ``--chart``)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.stats.charts import bar_chart, line_chart, stacked_bar

__all__ = ["render_chart"]


def _chart_fig1(result: ExperimentResult) -> str:
    traces = result.extra["mptu_traces"]
    return line_chart(
        traces, title="MPTU vs retired uops (windowed)", height=10,
    )


def _chart_sweep(result: ExperimentResult) -> str:
    series = result.extra["series"]
    labels = list(series)
    coverage = [series[label][0] for label in labels]
    accuracy = [series[label][1] for label in labels]
    header = "x-axis: " + " ".join(labels)
    chart = line_chart(
        {"coverage": coverage, "accuracy": accuracy},
        title="adjusted coverage/accuracy across the sweep",
    )
    return chart + "\n" + header


def _chart_fig9(result: ExperimentResult) -> str:
    series = result.extra["series"]
    width_labels = sorted(next(iter(series.values())))
    data = {
        label: [line[w] for w in width_labels]
        for label, line in series.items()
    }
    chart = line_chart(data, title="speedup vs width", height=12)
    return chart + "\nx-axis: " + " ".join(width_labels)


def _chart_means(result: ExperimentResult, key: str, title: str) -> str:
    return bar_chart(result.extra[key], baseline=1.0, title=title)


def _chart_fig10(result: ExperimentResult) -> str:
    return stacked_bar(
        result.extra["distributions"],
        title="UL2 load-request distribution",
        legend={"str-full": "S", "str-part": "s", "cpf-full": "C",
                "cpf-part": "c", "ul2-miss": "."},
    )


def _chart_tlb(result: ExperimentResult) -> str:
    series = {str(k): v for k, v in result.extra["series"].items()}
    return bar_chart(series, baseline=1.0, title="speedup vs DTLB entries")


def _chart_sensitivity(result: ExperimentResult) -> str:
    l2 = {"UL2 %d KB" % k: v for k, v in result.extra["l2_series"].items()}
    lat = {"bus %d cyc" % k: v
           for k, v in result.extra["latency_series"].items()}
    return (
        bar_chart(l2, baseline=1.0, title="speedup vs UL2 size")
        + "\n\n"
        + bar_chart(lat, baseline=1.0, title="speedup vs bus latency")
    )


def render_chart(result: ExperimentResult) -> str | None:
    """Render an ASCII chart for *result*, or ``None`` if unsupported."""
    experiment = result.experiment_id
    if experiment == "fig1":
        return _chart_fig1(result)
    if experiment in ("fig7", "fig8"):
        return _chart_sweep(result)
    if experiment == "fig9":
        return _chart_fig9(result)
    if experiment == "fig10":
        return _chart_fig10(result)
    if experiment == "fig11":
        return _chart_means(result, "means", "Markov vs content speedup")
    if experiment == "zoo":
        return _chart_means(result, "means", "prefetcher zoo speedup")
    if experiment == "ablation":
        return _chart_means(result, "means", "ablation variants")
    if experiment == "pollution":
        return bar_chart(
            result.extra["slowdowns"], baseline=1.0,
            title="slowdown from injected bad prefetches",
        )
    if experiment == "tlb":
        return _chart_tlb(result)
    if experiment == "sensitivity":
        return _chart_sensitivity(result)
    return None
