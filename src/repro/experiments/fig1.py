"""Figure 1 — non-cumulative MPTU trace for a 4-MByte UL2 cache.

Reproduces the warm-up characterisation: one benchmark per suite is run
through the functional simulator with a 4 MB UL2 (the paper uses the large
cache so the warm-up bound is valid for every size studied), recording
windowed MPTU against retired µops.  The expected shape is a sharp
transient — compulsory misses while the cache fills — decaying to a
steady state, which is what justifies discarding the first quarter of each
trace everywhere else.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    run_functional,
)
from repro.workloads.suite import build_benchmark

__all__ = ["run", "steady_state_window"]


def steady_state_window(mptu_trace: list, tail_fraction: float = 0.5) -> float:
    """Mean MPTU over the trailing *tail_fraction* of the trace."""
    if not mptu_trace:
        return 0.0
    start = int(len(mptu_trace) * (1.0 - tail_fraction))
    tail = mptu_trace[start:] or mptu_trace
    return sum(tail) / len(tail)


def run(
    scale: float = 0.25,
    benchmarks=REPRESENTATIVES,
    windows: int = 30,
    seed: int = 1,
) -> ExperimentResult:
    config = model_machine(l2_equiv_mb=4).with_content(enabled=False)
    traces = {}
    rows = []
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        window_uops = max(500, workload.trace.uop_count // windows)
        result = run_functional(
            config, workload, mptu_window_uops=window_uops,
            warmup_uops=0,
        )
        traces[name] = result.mptu_trace
        transient = (
            max(result.mptu_trace[:5]) if result.mptu_trace else 0.0
        )
        steady = steady_state_window(result.mptu_trace)
        rows.append([
            name,
            "%.2f" % transient,
            "%.2f" % steady,
            "%.1fx" % (transient / steady if steady else float("inf")),
        ])
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: Non-cumulative MPTU trace, 4-MByte UL2 cache",
        headers=["benchmark", "peak transient MPTU", "steady MPTU",
                 "transient/steady"],
        rows=rows,
        notes=(
            "Expected shape: a distinct transient (compulsory misses) that "
            "decays to a steady state, motivating the warm-up discard."
        ),
        extra={"mptu_traces": traces},
    )
