"""Figure 8 — adjusted coverage/accuracy vs align bits and scan step.

With compare/filter fixed at the Figure 7 choice (8.4), sweeps the
alignment requirement (0, 1, 2, 4 bits) against the cache-line scan step
(1, 2, 4 bytes), labelled ``8.4.A.S`` as in the paper.

Expected shape: requiring 2 align bits (4-byte alignment) boosts accuracy
but costs coverage because footprint-optimising compilers pack structures
on 2-byte boundaries; the paper settles on 1 align bit and a 2-byte step.
(Our suite includes 2-byte-aligned heaps — ``rc3`` and ``creation`` — to
reproduce exactly that effect.)
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    model_machine,
    run_functional,
)
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["PAPER_SWEEP", "run"]

# (align bits, scan step) in the paper's plotting order: step-major.
PAPER_SWEEP = (
    (0, 1), (1, 1), (2, 1), (4, 1),
    (0, 2), (1, 2), (2, 2), (4, 2),
    (0, 4), (1, 4), (2, 4), (4, 4),
)

# Alignment-sensitive benchmarks must be in the mix for the align-bit
# tradeoff to be visible: rc3 and creation use 2-byte-aligned heaps.
DEFAULT_BENCHMARKS = (
    "b2c", "rc3", "creation", "tpcc-2", "verilog-func", "specjbb-vsnet",
)


def run(
    scale: float = 0.25,
    benchmarks=DEFAULT_BENCHMARKS,
    sweep=PAPER_SWEEP,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    series = {}
    for align_bits, scan_step in sweep:
        config = model_machine().with_content(
            compare_bits=8,
            filter_bits=4,
            align_bits=align_bits,
            scan_step=scan_step,
            next_lines=0,
            prev_lines=0,
        )
        coverages = []
        accuracies = []
        for name in benchmarks:
            workload = build_benchmark(name, scale=scale, seed=seed)
            result = run_functional(config, workload)
            coverages.append(result.adjusted_content_coverage)
            accuracies.append(result.adjusted_content_accuracy)
        label = "8.4.%d.%d" % (align_bits, scan_step)
        coverage = arithmetic_mean(coverages)
        accuracy = arithmetic_mean(accuracies)
        series[label] = (coverage, accuracy)
        rows.append([
            label, "%.1f%%" % (100 * coverage), "%.1f%%" % (100 * accuracy)
        ])
    return ExperimentResult(
        experiment_id="fig8",
        title=(
            "Figure 8: Adjusted prefetch coverage and accuracy "
            "(align bits and scan step)"
        ),
        headers=["cmp.flt.align.step", "adjusted coverage",
                 "adjusted accuracy"],
        rows=rows,
        notes=(
            "Expected: align=2 trades coverage for accuracy (2-byte-packed "
            "heaps exist); 8.4.1.2 is the paper's final configuration."
        ),
        extra={"series": series},
    )
