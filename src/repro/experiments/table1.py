"""Table 1 — the 4-GHz system configuration.

A configuration dump rather than a measurement: it verifies that the
default :class:`MachineConfig` encodes the paper's machine, and renders it
in Table 1's layout.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.params import MachineConfig

__all__ = ["run"]


def run(config: MachineConfig | None = None) -> ExperimentResult:
    if config is None:
        config = MachineConfig()
    rows = [
        line.split("  ", 1)
        for line in config.describe().splitlines()
    ]
    rows = [[name.strip(), value.strip()] for name, value in rows]
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: Performance model: 4-GHz system configuration",
        headers=["Parameter", "Value"],
        rows=rows,
        extra={"config": config},
    )
