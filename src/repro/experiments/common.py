"""Shared experiment plumbing.

Scaling: the paper runs 30 M-instruction LIT slices; pure-Python timing
simulation cannot.  Every driver takes a ``scale`` factor applied to both
workload footprint and trace length (defaults keep full runs in minutes and
benchmark runs in seconds), and a ``benchmarks`` list defaulting to either
the full Table 2 suite (functional experiments) or the one-per-suite
representative subset (timing sweeps, mirroring Figure 1's selection).

Warm-up: the paper discards the first 7.5 M of 30 M µops (Section 2.2);
we correspondingly discard the first quarter of each trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import perf
from repro.core.results import TimingResult
from repro.core.simulator import TimingSimulator
from repro.params import MachineConfig
from repro.stats.tables import render_table
from repro.trace.ops import Trace
from repro.workloads.base import BuiltWorkload
from repro.workloads.suite import REPRESENTATIVES, build_benchmark

__all__ = [
    "DEFAULT_SCALE",
    "MODEL_SILICON_SCALE",
    "ExperimentResult",
    "REPRESENTATIVES",
    "model_machine",
    "run_functional",
    "run_timing",
    "set_speedup_provider",
    "timing_speedups",
    "warmup_uops_for",
]

#: Default workload (trace-length) scale for command-line experiment runs.
DEFAULT_SCALE = 0.25

#: Fraction of each trace treated as warm-up (paper: 7.5 M of 30 M µops).
WARMUP_FRACTION = 0.25

#: The experiments run a 1/4-silicon model machine: caches are a quarter of
#: Table 1's sizes (L1 8 KB, UL2 256 KB standing in for 1 MB, 1 MB for
#: 4 MB) and workload footprints are sized against those.  Pure-Python
#: simulation cannot execute 30 M-instruction slices, so instead of
#: shrinking traces against full-size caches (which would make everything
#: compulsory-miss-bound) we shrink the caches and footprints together —
#: preserving the footprint/cache ratios that drive every result shape.
#: Latencies, widths, queue sizes, and the DTLB stay at Table 1 values.
MODEL_SILICON_SCALE = 4


def model_machine(l2_equiv_mb: int = 1, **kwargs: object) -> MachineConfig:
    """The experiments' model machine.

    *l2_equiv_mb* selects the UL2 size in paper-equivalent megabytes
    (1 -> 128 KB model UL2, 4 -> 512 KB).  Extra keyword arguments are
    forwarded to :meth:`MachineConfig.replace`.

    Bus *bandwidth* scales up by the same factor the caches scale down:
    scaled workloads have ~8x the paper's misses-per-µop, so preserving
    Table 1's bytes-per-cycle would saturate the bus on demand traffic
    alone and mask every latency effect the paper studies.  Bus *latency*
    stays at the full 460 cycles — memory latency is the paper's subject.
    """
    import dataclasses

    from repro.params import KB, CacheConfig  # local to avoid cycle noise

    base = MachineConfig()
    l1 = CacheConfig(
        base.l1d.size_bytes // MODEL_SILICON_SCALE,
        base.l1d.associativity,
        latency=base.l1d.latency,
    )
    ul2 = CacheConfig(
        l2_equiv_mb * 1024 * KB // MODEL_SILICON_SCALE,
        base.ul2.associativity,
        latency=base.ul2.latency,
    )
    bus = dataclasses.replace(
        base.bus,
        bandwidth_bytes_per_cycle=(
            base.bus.bandwidth_bytes_per_cycle * MODEL_SILICON_SCALE
        ),
    )
    return base.replace(l1d=l1, ul2=ul2, bus=bus, **kwargs)


@dataclass
class ExperimentResult:
    """Rows + metadata from one experiment."""

    experiment_id: str
    title: str
    headers: list
    rows: list
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n\n" + self.notes
        return text


def warmup_uops_for(trace: Trace) -> int:
    return int(trace.uop_count * WARMUP_FRACTION)


def run_functional(
    config: MachineConfig,
    workload: BuiltWorkload,
    mptu_window_uops: int = 0,
    warmup_uops: int | None = None,
):
    """Run one functional simulation with the standard warm-up discipline.

    *warmup_uops* overrides the standard quarter-trace discard (pass 0 to
    measure the transient, as Figure 1 does).
    """
    from repro.core.functional import FunctionalSimulator

    if warmup_uops is None:
        warmup_uops = warmup_uops_for(workload.trace)
    simulator = FunctionalSimulator(
        config, workload.memory, mptu_window_uops=mptu_window_uops
    )
    if not perf.enabled():
        return simulator.run(workload.trace, warmup_uops)
    started = time.perf_counter()
    with perf.stage("functional-sim"):
        result = simulator.run(workload.trace, warmup_uops)
    perf.record_throughput(
        "functional uops/sec", workload.trace.uop_count,
        time.perf_counter() - started,
    )
    return result


def run_timing(
    config: MachineConfig,
    workload: BuiltWorkload,
    adaptive: bool = False,
    inject_pollution: bool = False,
) -> TimingResult:
    """Run one timing simulation with the standard warm-up discipline."""
    simulator = TimingSimulator(
        config, workload.memory, adaptive=adaptive
    )
    if inject_pollution:
        simulator.memsys.inject_pollution = True
    if not perf.enabled():
        return simulator.run(workload.trace, warmup_uops_for(workload.trace))
    started = time.perf_counter()
    with perf.stage("timing-sim"):
        result = simulator.run(
            workload.trace, warmup_uops_for(workload.trace)
        )
    perf.record_throughput(
        "timing uops/sec", workload.trace.uop_count,
        time.perf_counter() - started,
    )
    return result


#: When installed (see :func:`set_speedup_provider`), every
#: :func:`timing_speedups` call is delegated here instead of running
#: simulations inline.  The simulation service installs a provider that
#: re-expresses each sweep as a batch of content-addressed requests, so a
#: re-run sweep only recomputes cells whose configuration changed.
_SPEEDUP_PROVIDER = None


def set_speedup_provider(provider):
    """Install (or, with ``None``, remove) the sweep backend; returns the
    previous provider.  A provider is called as
    ``provider(config, benchmarks, scale, seed, baseline_config)`` and
    must return the same ``{benchmark: speedup}`` mapping as
    :func:`timing_speedups`.
    """
    global _SPEEDUP_PROVIDER
    previous = _SPEEDUP_PROVIDER
    _SPEEDUP_PROVIDER = provider
    return previous


def timing_speedups(
    config: MachineConfig,
    benchmarks,
    scale: float,
    seed: int = 1,
    baseline_config: MachineConfig | None = None,
    baseline_cache: dict | None = None,
) -> dict:
    """Per-benchmark speedups of *config* over the stride-only baseline.

    *baseline_cache* (keyed by benchmark name) lets sweeps reuse baseline
    runs across configurations — the baseline machine never changes within
    a sweep.  With a speedup provider installed the whole call is served
    by it (and *baseline_cache* is ignored: the provider's result store
    already dedups baselines by content address).
    """
    if _SPEEDUP_PROVIDER is not None:
        return _SPEEDUP_PROVIDER(
            config, list(benchmarks), scale, seed, baseline_config
        )
    if baseline_config is None:
        baseline_config = config.with_content(enabled=False).with_markov(
            enabled=False
        )
    speedups = {}
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        if baseline_cache is not None and name in baseline_cache:
            baseline = baseline_cache[name]
        else:
            baseline = run_timing(baseline_config, workload)
            if baseline_cache is not None:
                baseline_cache[name] = baseline
        enhanced = run_timing(config, workload)
        speedups[name] = enhanced.speedup_over(baseline)
    return speedups
