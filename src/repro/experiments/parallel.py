"""Multiprocess sweep execution.

Timing simulations are single-threaded Python; sweeps over benchmarks are
embarrassingly parallel.  :func:`parallel_speedups` is a drop-in for
:func:`repro.experiments.common.timing_speedups` that farms each
benchmark's baseline+enhanced pair out to a worker process.

Workers rebuild the workload from its (name, scale, seed) key — the
builders are deterministic, and each process keeps its own image cache, so
nothing large crosses the process boundary.
"""

from __future__ import annotations

import multiprocessing

from repro.params import MachineConfig

__all__ = ["parallel_speedups"]


def _run_benchmark_pair(args) -> tuple:
    """Worker: one benchmark's baseline and enhanced runs."""
    (name, scale, seed, config, baseline_config, warmup_fraction) = args
    from repro.core.simulator import TimingSimulator
    from repro.workloads.suite import build_benchmark

    workload = build_benchmark(name, scale=scale, seed=seed)
    warmup = int(workload.trace.uop_count * warmup_fraction)
    baseline = TimingSimulator(baseline_config, workload.memory).run(
        workload.trace, warmup
    )
    enhanced = TimingSimulator(config, workload.memory).run(
        workload.trace, warmup
    )
    return name, enhanced.speedup_over(baseline)


def parallel_speedups(
    config: MachineConfig,
    benchmarks,
    scale: float,
    seed: int = 1,
    baseline_config: MachineConfig | None = None,
    processes: int | None = None,
    warmup_fraction: float = 0.25,
) -> dict:
    """Per-benchmark speedups, computed across worker processes.

    Returns the same ``{benchmark: speedup}`` mapping as
    :func:`timing_speedups`.  With ``processes=1`` (or a single
    benchmark) everything runs in-process — useful for debugging.
    """
    if baseline_config is None:
        baseline_config = config.with_content(enabled=False).with_markov(
            enabled=False
        )
    jobs = [
        (name, scale, seed, config, baseline_config, warmup_fraction)
        for name in benchmarks
    ]
    if processes == 1 or len(jobs) <= 1:
        results = [_run_benchmark_pair(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            results = pool.map(_run_benchmark_pair, jobs)
    return dict(results)
