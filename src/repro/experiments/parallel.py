"""Crash-safe multiprocess sweep execution.

Timing simulations are single-threaded Python; sweeps over benchmarks are
embarrassingly parallel.  :func:`parallel_speedups` is a drop-in for
:func:`repro.experiments.common.timing_speedups` that farms each
benchmark's baseline+enhanced pair out to a worker process.

Workers rebuild the workload from its (name, scale, seed) key — the
builders are deterministic, and each process keeps its own image cache, so
nothing large crosses the process boundary.

Unlike a bare ``Pool.map``, jobs are dispatched individually with a
per-job timeout and bounded retry: one benchmark that crashes, hangs, or
has its worker killed does not take the sweep down.  The surviving
benchmarks' results are returned and every failure is recorded with its
error and attempt count (:class:`SweepOutcome`).
"""

from __future__ import annotations

import multiprocessing
import random as _random
import time as _time
from dataclasses import dataclass, field

from repro.params import MachineConfig

__all__ = [
    "CODE_SIM_ERROR",
    "CODE_TIMEOUT",
    "CODE_WORKER_CRASHED",
    "CODE_WORKER_STALLED",
    "INFRASTRUCTURE_CODES",
    "JobFailure",
    "SweepOutcome",
    "backoff_delay",
    "drain_sweep_failures",
    "is_infrastructure_code",
    "run_sweep",
    "parallel_speedups",
]

# -- failure taxonomy ---------------------------------------------------------
#
# Every failed execution attempt carries one of these stable code strings,
# shared between the sweep runner and the serving tier (repro.service).
# The split that matters operationally is *simulation* failures (the job
# itself is wrong — retrying cannot help beyond transient flakiness) vs
# *infrastructure* failures (the machinery running the job died — the job
# may be fine, or it may be poison that kills every worker it touches).

#: The job raised a clean Python exception (bad benchmark name, a bug in
#: the simulator, an assertion): the worker survived to report it.
CODE_SIM_ERROR = "sim_error"
#: The job exceeded its wall-clock budget and was abandoned (and, under
#: supervised process workers, killed).
CODE_TIMEOUT = "timeout"
#: The worker process died without reporting a result (signal, OOM kill,
#: interpreter abort).
CODE_WORKER_CRASHED = "worker_crashed"
#: The worker's heartbeat went silent past the stall window and the
#: scheduler's reaper killed it.
CODE_WORKER_STALLED = "worker_stalled"

#: Codes that indicate the *infrastructure* failed, not the simulation.
#: These feed the service's circuit breaker and poison-job quarantine.
INFRASTRUCTURE_CODES = frozenset(
    {CODE_TIMEOUT, CODE_WORKER_CRASHED, CODE_WORKER_STALLED}
)


def is_infrastructure_code(code: str) -> bool:
    """Whether *code* names an infrastructure (not simulation) failure."""
    return code in INFRASTRUCTURE_CODES

#: Per-attempt backoff base (seconds); attempt *n* waits ``backoff * n``
#: on average, jittered ±50% (see :func:`_backoff_delay`).
DEFAULT_BACKOFF = 0.25

_JITTER = _random.Random()


def _backoff_delay(backoff: float, attempt: int) -> float:
    """Jittered linear backoff for retry attempt *attempt*.

    Uniform over ``[0.5, 1.5] * backoff * attempt``: when several jobs
    fail together (a machine-wide stall, an OOM killer pass), unjittered
    retries re-land simultaneously and recreate the contention that
    killed them; the spread decorrelates them.
    """
    if backoff <= 0:
        return 0.0
    return backoff * attempt * (0.5 + _JITTER.random())


#: Public name for the retry machinery shared with :mod:`repro.service`.
backoff_delay = _backoff_delay


#: JobFailures recorded by every sweep since the last drain.  The
#: experiments CLI drains this after a run to surface per-job failure
#: summaries and convert survivor continuation into exit code 3.
_SWEEP_FAILURES: list = []


def drain_sweep_failures() -> list:
    """Return (and clear) the failures recorded by sweeps so far."""
    failures = list(_SWEEP_FAILURES)
    del _SWEEP_FAILURES[:]
    return failures


@dataclass
class JobFailure:
    """One benchmark the sweep could not complete."""

    benchmark: str
    error: str
    attempts: int
    timed_out: bool = False
    #: Failure-taxonomy code of the *final* attempt (see module constants).
    code: str = CODE_SIM_ERROR

    @property
    def infrastructure(self) -> bool:
        """Whether the infrastructure, not the simulation, failed."""
        return is_infrastructure_code(self.code)


@dataclass
class SweepOutcome:
    """Results of a crash-safe sweep: survivors plus recorded failures."""

    speedups: dict = field(default_factory=dict)
    failures: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failures

    def describe_failures(self) -> str:
        return "; ".join(
            "%s: %s (after %d attempt%s)"
            % (f.benchmark, f.error, f.attempts,
               "" if f.attempts == 1 else "s")
            for f in self.failures.values()
        )


def _run_benchmark_pair(args) -> tuple:
    """Worker: one benchmark's baseline and enhanced runs."""
    (name, scale, seed, config, baseline_config, warmup_fraction) = args
    from repro.core.simulator import TimingSimulator
    from repro.workloads.suite import build_benchmark

    workload = build_benchmark(name, scale=scale, seed=seed)
    warmup = int(workload.trace.uop_count * warmup_fraction)
    baseline = TimingSimulator(baseline_config, workload.memory).run(
        workload.trace, warmup
    )
    enhanced = TimingSimulator(config, workload.memory).run(
        workload.trace, warmup
    )
    return name, enhanced.speedup_over(baseline)


def _run_serial(jobs, job_runner, retries, backoff) -> SweepOutcome:
    """In-process execution (``processes=1``) with the same retry rules."""
    outcome = SweepOutcome()
    for job in jobs:
        name = job[0]
        last_error = None
        for attempt in range(1, retries + 2):
            try:
                result_name, value = job_runner(job)
            except Exception as exc:  # noqa: BLE001 - worker may raise anything
                last_error = "%s: %s" % (type(exc).__name__, exc)
                if attempt <= retries:
                    _time.sleep(_backoff_delay(backoff, attempt))
                continue
            outcome.speedups[result_name] = value
            last_error = None
            break
        if last_error is not None:
            outcome.failures[name] = JobFailure(
                name, last_error, attempts=retries + 1
            )
    return outcome


def run_sweep(
    config: MachineConfig,
    benchmarks,
    scale: float,
    seed: int = 1,
    baseline_config: MachineConfig | None = None,
    processes: int | None = None,
    warmup_fraction: float = 0.25,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = DEFAULT_BACKOFF,
    job_runner=_run_benchmark_pair,
) -> SweepOutcome:
    """Per-benchmark speedups with per-job timeout, retry, and survival.

    Each benchmark is dispatched as its own job.  A job that raises or
    exceeds *timeout* seconds is retried up to *retries* more times with
    linear backoff; if it still fails it is recorded in
    :attr:`SweepOutcome.failures` and the sweep continues with the
    remaining benchmarks.  A worker process that dies (or hangs) only
    loses its own job: stragglers are killed when the pool is torn down.

    *job_runner* exists for testing — it must be a picklable module-level
    callable taking the job tuple and returning ``(name, speedup)``.
    """
    if baseline_config is None:
        baseline_config = config.with_content(enabled=False).with_markov(
            enabled=False
        )
    jobs = [
        (name, scale, seed, config, baseline_config, warmup_fraction)
        for name in benchmarks
    ]
    if processes == 1 or len(jobs) <= 1:
        outcome = _run_serial(jobs, job_runner, retries, backoff)
        _SWEEP_FAILURES.extend(outcome.failures.values())
        return outcome

    outcome = SweepOutcome()
    job_by_name = {job[0]: job for job in jobs}
    attempts = {job[0]: 0 for job in jobs}
    with multiprocessing.Pool(processes=processes) as pool:
        pending = {}
        for job in jobs:
            attempts[job[0]] += 1
            pending[job[0]] = pool.apply_async(job_runner, (job,))
        while pending:
            retry_names = []
            for name, handle in pending.items():
                timed_out = False
                try:
                    result_name, value = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    error = (
                        "timed out after %.1fs" % timeout
                        if timeout is not None else "timed out"
                    )
                except Exception as exc:  # noqa: BLE001
                    error = "%s: %s" % (type(exc).__name__, exc)
                else:
                    outcome.speedups[result_name] = value
                    continue
                if attempts[name] <= retries:
                    retry_names.append(name)
                else:
                    outcome.failures[name] = JobFailure(
                        name, error, attempts[name], timed_out=timed_out,
                        code=CODE_TIMEOUT if timed_out else CODE_SIM_ERROR,
                    )
            pending = {}
            for name in retry_names:
                _time.sleep(_backoff_delay(backoff, attempts[name]))
                attempts[name] += 1
                pending[name] = pool.apply_async(
                    job_runner, (job_by_name[name],)
                )
        # Pool.__exit__ terminates the pool, killing any worker still
        # stuck on a timed-out job.
    _SWEEP_FAILURES.extend(outcome.failures.values())
    return outcome


def parallel_speedups(
    config: MachineConfig,
    benchmarks,
    scale: float,
    seed: int = 1,
    baseline_config: MachineConfig | None = None,
    processes: int | None = None,
    warmup_fraction: float = 0.25,
    timeout: float | None = None,
    retries: int = 1,
) -> dict:
    """Per-benchmark speedups, computed across worker processes.

    Returns the same ``{benchmark: speedup}`` mapping as
    :func:`timing_speedups`, containing the benchmarks that completed.
    Use :func:`run_sweep` directly to also inspect recorded failures.
    With ``processes=1`` (or a single benchmark) everything runs
    in-process — useful for debugging.
    """
    return run_sweep(
        config, benchmarks, scale, seed=seed,
        baseline_config=baseline_config, processes=processes,
        warmup_fraction=warmup_fraction, timeout=timeout, retries=retries,
    ).speedups
