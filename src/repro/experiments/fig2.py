"""Figure 2 — the virtual-address-matching bit layout, rendered.

The paper's Figure 2 shows where the compare, filter, and align bits sit
within the 32-bit effective address and candidate word.  This driver
renders the same diagram for any :class:`ContentConfig` — useful when
tuning non-default configurations with ``examples/tune_matcher.py``.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.params import ContentConfig

__all__ = ["bit_layout", "run"]


def bit_layout(config: ContentConfig | None = None) -> str:
    """ASCII rendering of Figure 2 for *config* (default: paper tuning)."""
    if config is None:
        config = ContentConfig()
    bits = config.address_bits
    row = []
    for bit in range(bits - 1, -1, -1):
        if bit >= bits - config.compare_bits:
            row.append("C")
        elif bit >= bits - config.compare_bits - config.filter_bits:
            row.append("F")
        elif bit < config.align_bits:
            row.append("A")
        else:
            row.append(".")
    cells = " ".join(row)
    ruler = " ".join(
        "%d" % (bit % 10) for bit in range(bits - 1, -1, -1)
    )
    legend = (
        "C = compare bits (%d): candidate must match the effective "
        "address\n"
        "F = filter bits (%d): non-zero (non-one) bit required in the "
        "all-zeros (all-ones) region\n"
        "A = align bits (%d): must be zero\n"
        ". = don't care; scan step %d byte(s)"
        % (config.compare_bits, config.filter_bits, config.align_bits,
           config.scan_step)
    )
    return "bit  %s\n     %s\n\n%s" % (ruler, cells, legend)


def run(config: ContentConfig | None = None) -> ExperimentResult:
    if config is None:
        config = ContentConfig()
    rows = [
        ["compare bits", config.compare_bits,
         "bits %d..%d" % (config.address_bits - 1,
                          config.address_bits - config.compare_bits)],
        ["filter bits", config.filter_bits,
         "bits %d..%d" % (
             config.address_bits - config.compare_bits - 1,
             config.address_bits - config.compare_bits
             - config.filter_bits,
         ) if config.filter_bits else "-"],
        ["align bits", config.align_bits,
         "bits %d..0" % (config.align_bits - 1)
         if config.align_bits else "-"],
        ["scan step", config.scan_step, "bytes"],
        ["prefetchable range", 1 << (config.address_bits
                                     - config.compare_bits), "bytes"],
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title="Figure 2: virtual address matching bit positions",
        headers=["field", "width/value", "position"],
        rows=rows,
        notes=bit_layout(config),
    )
