"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Examples::

    repro-experiments table1
    repro-experiments fig9 --scale 0.2
    repro-experiments all --scale 0.1 --out results.txt
    repro-experiments all --out results.txt --resume   # skip finished ones
    repro-experiments faultsweep --check-invariants
    repro-experiments fig9 --snapshot-every 2000000 --snapshot-dir snaps \\
        --deadline 3500                                # snapshot + watchdog
    repro-experiments fig9 --snapshot-every 2000000 --resume-from snaps

Long ``all`` runs are crash-safe: with ``--out``, each experiment's
rendered output is appended (and a checkpoint sidecar updated) as soon as
it completes, and ``--resume`` skips experiments the checkpoint already
records — a crash mid-sweep loses only the experiment that was running.
With ``--snapshot-every``, even the experiment that was running loses
nothing: every timing run snapshots its full architectural state
periodically and ``--resume-from`` continues each run from its last
snapshot, bit-identically (see :mod:`repro.snapshot`).

Exit codes: 0 — everything completed; 2 — bad invocation, corrupt or
mismatched checkpoint/snapshot; 3 — completed partially (crash-safe
sweeps skipped failing jobs; survivors' results are valid); 4 — the
wall-clock watchdog expired and state was snapshotted (resume with
``--resume-from``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import perf
from repro.core import invariants
from repro.experiments import parallel as _parallel
from repro.experiments import (
    ablation,
    faultsweep,
    fig1,
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    pollution,
    related,
    sensitivity,
    table1,
    table2,
    table3,
    tlbsweep,
    zoo,
)

from repro.snapshot import (
    SnapshotError,
    SnapshotPolicy,
    WatchdogExpired,
    set_policy,
)

__all__ = ["EXPERIMENTS", "CheckpointError", "main"]

# Process exit codes (documented in the module docstring and EXPERIMENTS.md).
EXIT_CLEAN = 0
EXIT_ERROR = 2
EXIT_PARTIAL = 3
EXIT_WATCHDOG = 4


class CheckpointError(Exception):
    """The ``--out`` checkpoint sidecar is unusable for resuming."""

EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "tlb": tlbsweep.run,
    "fig10": fig10.run,
    "table3": table3.run,
    "fig11": fig11.run,
    "pollution": pollution.run,
    "ablation": ablation.run,
    "zoo": zoo.run,
    "sensitivity": sensitivity.run,
    "related": related.run,
    "faultsweep": faultsweep.run,
}

# Experiments whose run() takes no scale (configuration dumps).
_UNSCALED = {"table1", "table3", "fig2", "fig3"}


def _checkpoint_path(out_path: str) -> str:
    return out_path + ".ckpt.json"


def _load_checkpoint(out_path: str, fingerprint: dict) -> dict:
    """Completed-experiment records from a previous (crashed) run.

    A checkpoint that cannot be used raises :class:`CheckpointError` with
    a message saying why and what to do — resuming a ``--scale 0.1``
    sweep with ``--scale 0.5`` results would silently mix incomparable
    numbers, and a half-written sidecar means the previous run's appends
    cannot be trusted either.
    """
    path = _checkpoint_path(out_path)
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (json.JSONDecodeError, OSError) as exc:
        raise CheckpointError(
            "checkpoint %s is corrupt (%s); delete it, or rerun without "
            "--resume to start the sweep over" % (path, exc)
        ) from exc
    if not isinstance(data, dict) or "completed" not in data:
        raise CheckpointError(
            "checkpoint %s is not a repro-experiments checkpoint; delete "
            "it, or rerun without --resume" % path
        )
    if data.get("fingerprint") != fingerprint:
        raise CheckpointError(
            "checkpoint %s was written with parameters %s, but this run "
            "uses %s — finish with the original parameters, or rerun "
            "without --resume to discard it"
            % (path, data.get("fingerprint"), fingerprint)
        )
    completed = data.get("completed", {})
    return completed if isinstance(completed, dict) else {}


def _save_checkpoint(out_path: str, fingerprint: dict, completed: dict) -> None:
    """Atomically persist the finished experiments (tmp + fsync + replace)."""
    path = _checkpoint_path(out_path)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp, "w") as handle:
            json.dump(
                {"fingerprint": fingerprint, "completed": completed},
                handle, indent=1,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: per-experiment)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload build seed"
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also append rendered output to this file (incrementally, "
             "with a resumable checkpoint sidecar)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already recorded in the --out checkpoint",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="run the full simulation-integrity checker after every "
             "timing run (fails loudly instead of reporting bad numbers)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="record a state digest (and, with --snapshot-dir, a full "
             "resumable snapshot) every N simulated uops of each timing run",
    )
    parser.add_argument(
        "--snapshot-dir", type=str, default=None, metavar="DIR",
        help="directory for per-run snapshot files (requires "
             "--snapshot-every)",
    )
    parser.add_argument(
        "--resume-from", type=str, default=None, metavar="DIR",
        help="resume each timing run from its snapshot in DIR when one "
             "exists (implies --snapshot-dir DIR)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock watchdog: once SECONDS elapse, the next snapshot "
             "boundary saves state and the process exits with code 4 "
             "(requires --snapshot-every and a snapshot directory)",
    )
    parser.add_argument(
        "--service-store", type=str, default=None, metavar="DIR",
        help="run timing sweeps through the simulation service "
             "(repro.service) with a content-addressed result cache "
             "rooted at DIR: a re-run sweep recomputes only the cells "
             "whose configuration changed",
    )
    parser.add_argument(
        "--service-workers", type=int, default=1, metavar="N",
        help="worker count for --service-store (default: 1)",
    )
    parser.add_argument(
        "--service-mode", choices=("thread", "process", "fabric"),
        default="thread",
        help="worker tier for --service-store: in-process threads, "
             "per-job processes, or the persistent multi-process fabric "
             "(default: thread)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render an ASCII chart of the result where supported",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record stage timings and simulator throughput "
             "(repro.perf) and print the profile after each experiment",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    snapshot_dir = args.resume_from or args.snapshot_dir
    if snapshot_dir is not None and args.snapshot_every is None:
        parser.error("--snapshot-dir/--resume-from require --snapshot-every")
    if args.deadline is not None and snapshot_dir is None:
        parser.error(
            "--deadline requires --snapshot-every and --snapshot-dir "
            "(expiry saves a snapshot before exiting)"
        )
    if args.service_store and args.snapshot_every is not None:
        parser.error(
            "--service-store manages its own snapshots; do not combine "
            "it with --snapshot-every"
        )
    policy = None
    if args.snapshot_every is not None:
        try:
            policy = SnapshotPolicy(
                every=args.snapshot_every,
                directory=snapshot_dir,
                resume=args.resume_from is not None,
                deadline=args.deadline,
            )
        except ValueError as exc:
            parser.error(str(exc))
    fingerprint = {"scale": args.scale, "seed": args.seed}
    completed: dict = {}
    previous_checks = invariants.set_global_checks(
        args.check_invariants or invariants.checks_enabled()
    )
    previous_profile = perf.set_enabled(args.profile or perf.enabled())
    previous_policy = set_policy(policy) if policy is not None else None
    _parallel.drain_sweep_failures()  # stale failures from earlier calls
    session = None
    if args.service_store:
        from repro.service.client import ServiceSession

        session = ServiceSession(
            store_dir=args.service_store,
            max_workers=args.service_workers,
            worker_mode=args.service_mode,
            max_pending=4096,
        ).start()
        session.install()
    try:
        if args.out and args.resume:
            completed = _load_checkpoint(args.out, fingerprint)
        for name in names:
            if name in completed:
                print("[%s skipped: already in checkpoint]" % name)
                continue
            run = EXPERIMENTS[name]
            kwargs = {}
            if name not in _UNSCALED:
                kwargs["seed"] = args.seed
                if args.scale is not None:
                    kwargs["scale"] = args.scale
            started = time.time()
            if args.profile:
                perf.RECORDER.reset()
            result = run(**kwargs)
            elapsed = time.time() - started
            text = result.render()
            if args.profile:
                text += "\n\n" + perf.report()
            if args.chart:
                from repro.experiments.chartrender import render_chart

                chart = render_chart(result)
                if chart:
                    text += "\n\n" + chart
            text += "\n\n[%s completed in %.1fs]\n" % (name, elapsed)
            print(text)
            if args.out:
                # Append immediately: a crash on a later experiment loses
                # nothing that already finished.
                with open(args.out, "a") as handle:
                    handle.write(text + "\n")
                completed[name] = {"elapsed": elapsed, "text": text}
                _save_checkpoint(args.out, fingerprint, completed)
    except (CheckpointError, SnapshotError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_ERROR
    except WatchdogExpired as exc:
        print("[watchdog] %s" % exc)
        return EXIT_WATCHDOG
    finally:
        invariants.set_global_checks(previous_checks)
        perf.set_enabled(previous_profile)
        if policy is not None:
            set_policy(previous_policy)
        if session is not None:
            status = session.status()
            session.close()
            print(status.render())
    failures = _parallel.drain_sweep_failures()
    if failures:
        summary = "[partial: %d job%s failed; survivors' results are " \
            "complete]\n" % (len(failures), "" if len(failures) == 1 else "s")
        summary += "\n".join(
            "  %s: %s (after %d attempt%s%s)"
            % (f.benchmark, f.error, f.attempts,
               "" if f.attempts == 1 else "s",
               ", timed out" if f.timed_out else "")
            for f in failures
        )
        print(summary)
        if args.out:
            with open(args.out, "a") as handle:
                handle.write(summary + "\n")
        return EXIT_PARTIAL
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
