"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Examples::

    repro-experiments table1
    repro-experiments fig9 --scale 0.2
    repro-experiments all --scale 0.1 --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation,
    fig1,
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    pollution,
    related,
    sensitivity,
    table1,
    table2,
    table3,
    tlbsweep,
    zoo,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "tlb": tlbsweep.run,
    "fig10": fig10.run,
    "table3": table3.run,
    "fig11": fig11.run,
    "pollution": pollution.run,
    "ablation": ablation.run,
    "zoo": zoo.run,
    "sensitivity": sensitivity.run,
    "related": related.run,
}

# Experiments whose run() takes no scale (configuration dumps).
_UNSCALED = {"table1", "table3", "fig2", "fig3"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: per-experiment)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload build seed"
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also append rendered output to this file",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render an ASCII chart of the result where supported",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    output_chunks = []
    for name in names:
        run = EXPERIMENTS[name]
        kwargs = {}
        if name not in _UNSCALED:
            kwargs["seed"] = args.seed
            if args.scale is not None:
                kwargs["scale"] = args.scale
        started = time.time()
        result = run(**kwargs)
        elapsed = time.time() - started
        text = result.render()
        if args.chart:
            from repro.experiments.chartrender import render_chart

            chart = render_chart(result)
            if chart:
                text += "\n\n" + chart
        text += "\n\n[%s completed in %.1fs]\n" % (name, elapsed)
        print(text)
        output_chunks.append(text)
    if args.out:
        with open(args.out, "a") as handle:
            handle.write("\n".join(output_chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
