"""Command-line entry point: ``python -m repro.experiments <id> [...]``.

Examples::

    repro-experiments table1
    repro-experiments fig9 --scale 0.2
    repro-experiments all --scale 0.1 --out results.txt
    repro-experiments all --out results.txt --resume   # skip finished ones
    repro-experiments faultsweep --check-invariants

Long ``all`` runs are crash-safe: with ``--out``, each experiment's
rendered output is appended (and a checkpoint sidecar updated) as soon as
it completes, and ``--resume`` skips experiments the checkpoint already
records — a crash mid-sweep loses only the experiment that was running.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import perf
from repro.core import invariants
from repro.experiments import (
    ablation,
    faultsweep,
    fig1,
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    pollution,
    related,
    sensitivity,
    table1,
    table2,
    table3,
    tlbsweep,
    zoo,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "tlb": tlbsweep.run,
    "fig10": fig10.run,
    "table3": table3.run,
    "fig11": fig11.run,
    "pollution": pollution.run,
    "ablation": ablation.run,
    "zoo": zoo.run,
    "sensitivity": sensitivity.run,
    "related": related.run,
    "faultsweep": faultsweep.run,
}

# Experiments whose run() takes no scale (configuration dumps).
_UNSCALED = {"table1", "table3", "fig2", "fig3"}


def _checkpoint_path(out_path: str) -> str:
    return out_path + ".ckpt.json"


def _load_checkpoint(out_path: str, fingerprint: dict) -> dict:
    """Completed-experiment records from a previous (crashed) run.

    The checkpoint is ignored when the sweep parameters changed — resuming
    a ``--scale 0.1`` sweep with ``--scale 0.5`` results would silently
    mix incomparable numbers.
    """
    path = _checkpoint_path(out_path)
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return {}
    if not isinstance(data, dict) or data.get("fingerprint") != fingerprint:
        return {}
    completed = data.get("completed", {})
    return completed if isinstance(completed, dict) else {}


def _save_checkpoint(out_path: str, fingerprint: dict, completed: dict) -> None:
    """Atomically persist the finished experiments."""
    path = _checkpoint_path(out_path)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(
            {"fingerprint": fingerprint, "completed": completed},
            handle, indent=1,
        )
    os.replace(tmp, path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: per-experiment)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload build seed"
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also append rendered output to this file (incrementally, "
             "with a resumable checkpoint sidecar)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already recorded in the --out checkpoint",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="run the full simulation-integrity checker after every "
             "timing run (fails loudly instead of reporting bad numbers)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render an ASCII chart of the result where supported",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record stage timings and simulator throughput "
             "(repro.perf) and print the profile after each experiment",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    fingerprint = {"scale": args.scale, "seed": args.seed}
    completed: dict = {}
    if args.out and args.resume:
        completed = _load_checkpoint(args.out, fingerprint)
    previous_checks = invariants.set_global_checks(
        args.check_invariants or invariants.checks_enabled()
    )
    previous_profile = perf.set_enabled(args.profile or perf.enabled())
    try:
        for name in names:
            if name in completed:
                print("[%s skipped: already in checkpoint]" % name)
                continue
            run = EXPERIMENTS[name]
            kwargs = {}
            if name not in _UNSCALED:
                kwargs["seed"] = args.seed
                if args.scale is not None:
                    kwargs["scale"] = args.scale
            started = time.time()
            if args.profile:
                perf.RECORDER.reset()
            result = run(**kwargs)
            elapsed = time.time() - started
            text = result.render()
            if args.profile:
                text += "\n\n" + perf.report()
            if args.chart:
                from repro.experiments.chartrender import render_chart

                chart = render_chart(result)
                if chart:
                    text += "\n\n" + chart
            text += "\n\n[%s completed in %.1fs]\n" % (name, elapsed)
            print(text)
            if args.out:
                # Append immediately: a crash on a later experiment loses
                # nothing that already finished.
                with open(args.out, "a") as handle:
                    handle.write(text + "\n")
                completed[name] = {"elapsed": elapsed, "text": text}
                _save_checkpoint(args.out, fingerprint, completed)
    finally:
        invariants.set_global_checks(previous_checks)
        perf.set_enabled(previous_profile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
