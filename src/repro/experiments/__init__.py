"""Experiment drivers — one module per paper table/figure.

Every module exposes ``run(...) -> ExperimentResult`` returning the rows
the paper reports (and a rendered text table).  ``python -m
repro.experiments <id>`` runs one from the command line; the benchmark
harness under ``benchmarks/`` runs scaled-down versions of all of them.

| id          | paper artifact                                             |
|-------------|------------------------------------------------------------|
| ``table1``  | Table 1 — machine configuration                            |
| ``fig1``    | Figure 1 — L2 MPTU warm-up trace (4 MB UL2)                |
| ``table2``  | Table 2 — instructions, µops, MPTU @ 1 MB / 4 MB           |
| ``fig7``    | Figure 7 — coverage/accuracy vs compare.filter bits        |
| ``fig8``    | Figure 8 — coverage/accuracy vs align bits & scan step     |
| ``fig9``    | Figure 9 — speedup: depth x width x reinforcement          |
| ``tlb``     | Section 4.2.2 — speedup vs DTLB size                       |
| ``fig10``   | Figure 10 — UL2 load-request distribution + speedups       |
| ``table3``  | Table 3 — Markov STAB configurations                       |
| ``fig11``   | Figure 11 — Markov vs content prefetcher speedups          |
| ``pollution`` | Section 3.5 limit study — bad-prefetch injection          |
| ``ablation``  | extensions: placement, rescan margin, adaptive tuning    |
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
