"""Extended sensitivity analysis: where does content prefetching pay?

Two sweeps the paper does not plot but its discussion implies:

* **UL2 size** — the content prefetcher trades cache pollution for
  latency masking, so its gain should grow with cache headroom and shrink
  (or invert) when the cache is undersized relative to the junk volume;
* **memory latency** — the scheme exists to hide memory latency, so its
  gain should scale with the latency being hidden and vanish as memory
  approaches the L2's speed.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    timing_speedups,
)
from repro.params import KB, CacheConfig
from repro.stats.metrics import arithmetic_mean

__all__ = ["L2_SIZES_KB", "BUS_LATENCIES", "run"]

L2_SIZES_KB = (128, 256, 512, 1024)
BUS_LATENCIES = (115, 230, 460, 920)


def run(
    scale: float = 0.15,
    benchmarks=REPRESENTATIVES,
    l2_sizes_kb=L2_SIZES_KB,
    bus_latencies=BUS_LATENCIES,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    l2_series = {}
    for size_kb in l2_sizes_kb:
        base = model_machine()
        config = base.replace(
            ul2=CacheConfig(size_kb * KB, base.ul2.associativity,
                            latency=base.ul2.latency)
        )
        speedups = timing_speedups(config, benchmarks, scale, seed=seed)
        mean = arithmetic_mean(speedups.values())
        l2_series[size_kb] = mean
        rows.append(["UL2 %d KB" % size_kb, "%.4f" % mean,
                     "%+.1f%%" % (100 * (mean - 1.0))])
    latency_series = {}
    for latency in bus_latencies:
        base = model_machine()
        config = base.replace(
            bus=dataclasses.replace(base.bus, bus_latency=latency)
        )
        speedups = timing_speedups(config, benchmarks, scale, seed=seed)
        mean = arithmetic_mean(speedups.values())
        latency_series[latency] = mean
        rows.append(["bus %d cycles" % latency, "%.4f" % mean,
                     "%+.1f%%" % (100 * (mean - 1.0))])
    return ExperimentResult(
        experiment_id="sensitivity",
        title="Sensitivity: content-prefetcher gain vs UL2 size and latency",
        headers=["configuration", "mean speedup", "gain"],
        rows=rows,
        notes=(
            "Extended analysis (not a paper figure): gains should grow "
            "with memory latency and with cache headroom."
        ),
        extra={"l2_series": l2_series, "latency_series": latency_series},
    )
