"""Extended comparison: the early-2000s hardware prefetcher zoo.

Beyond the paper's stride/Markov/content triangle, this experiment lines
up every sequential prefetcher of the era against content-directed
prefetching on the pointer-intensive suite, all relative to a
*no-prefetch* machine:

* ``none``            — no prefetching at all;
* ``stride``          — the paper's baseline (Chen & Baer RPT);
* ``stream``          — Jouppi stream buffers (paper reference [11]);
* ``stride+content``  — the paper's proposed configuration;
* ``stream+content``  — content prefetching over stream buffers.

Expected shape: sequential prefetchers help broadly; adding the content
prefetcher on top of either sequential scheme captures the pointer misses
they cannot, and the two sequential schemes are roughly interchangeable
underneath it.
"""

from __future__ import annotations

from repro.core.simulator import TimingSimulator
from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    warmup_uops_for,
)
from repro.prefetch.stream import StreamBufferPrefetcher
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["SequentialAdapter", "run"]


class SequentialAdapter:
    """Adapts :class:`StreamBufferPrefetcher` to the stride observe() API."""

    def __init__(self, buffers: StreamBufferPrefetcher) -> None:
        self.buffers = buffers

    def observe(self, pc: int, vaddr: int):
        return self.buffers.observe_miss(vaddr)

    def would_cover(self, pc: int, vaddr: int) -> bool:
        line = vaddr & ~63
        return line in self.buffers.tracked_heads()


def _build_simulator(label: str, config, memory) -> TimingSimulator:
    simulator = TimingSimulator(config, memory)
    if label.startswith("stream"):
        adapter = SequentialAdapter(StreamBufferPrefetcher(
            num_buffers=4, depth=4, line_size=config.line_size,
            address_bits=config.content.address_bits,
        ))
        simulator.stride = adapter
        simulator.memsys.stride = adapter
    return simulator


def run(
    scale: float = 0.15,
    benchmarks=REPRESENTATIVES,
    seed: int = 1,
) -> ExperimentResult:
    machines = {
        "none": model_machine().with_stride(enabled=False)
        .with_content(enabled=False),
        "stride": model_machine().with_content(enabled=False),
        "stream": model_machine().with_stride(enabled=False)
        .with_content(enabled=False),
        "stride+content": model_machine(),
        "stream+content": model_machine().with_stride(enabled=False),
    }
    per_machine: dict = {label: {} for label in machines}
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        warmup = warmup_uops_for(workload.trace)
        cycles = {}
        for label, config in machines.items():
            simulator = _build_simulator(label, config, workload.memory)
            result = simulator.run(workload.trace, warmup)
            cycles[label] = result.cycles
        for label in machines:
            per_machine[label][name] = (
                cycles["none"] / cycles[label] if cycles[label] else 0.0
            )
    rows = []
    means = {}
    for label in machines:
        mean = arithmetic_mean(per_machine[label].values())
        means[label] = mean
        rows.append([label, "%.4f" % mean,
                     "%+.1f%%" % (100 * (mean - 1.0))])
    return ExperimentResult(
        experiment_id="zoo",
        title=(
            "Prefetcher zoo: speedup over a no-prefetch machine "
            "(suite mean)"
        ),
        headers=["machine", "mean speedup", "gain"],
        rows=rows,
        notes=(
            "Extended comparison (not a paper figure): content-directed "
            "prefetching composes with either sequential scheme."
        ),
        extra={"means": means, "per_benchmark": per_machine},
    )
