"""Figure 3 — the paper's worked example of chaining and reinforcement.

The paper walks a five-line chain (A → B → C → D → E) twice:

* **left side (chaining):** a demand miss on A triggers prefetches of B
  (depth 1), C (depth 2), D (depth 3); the chain terminates at the depth
  threshold, so E is never requested;
* **right side (reinforcement):** a later demand hit on the prefetched B
  resets depths and rescans, extending the chain to E.

This driver builds exactly that memory image, runs the timing memory
system directly, and narrates the events.  It is a demonstration (and a
regression harness) rather than a measurement: the assertions in
``verify()`` pin the paper's A-through-E storyline to the implementation.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.core.memsys import TimingMemorySystem
from repro.core.results import TimingResult
from repro.experiments.common import ExperimentResult
from repro.memory.backing import BackingMemory
from repro.params import KB, CacheConfig, MachineConfig
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = ["build_chain", "run", "verify"]

_PC = 0x0804_8000
_BASE = 0x0840_0000
_PITCH = 256  # one line per link, distinct cache lines

LABELS = "ABCDE"


def build_chain():
    """The five-node chain of Figure 3 in simulated memory."""
    memory = BackingMemory()
    addresses = [_BASE + i * _PITCH for i in range(len(LABELS))]
    for here, nxt in zip(addresses, addresses[1:]):
        memory.write_word(here, nxt)
    memory.write_word(addresses[-1], 0)
    return memory, dict(zip(LABELS, addresses))


def _machine(reinforcement: bool) -> MachineConfig:
    return MachineConfig(
        l1d=CacheConfig(4 * KB, 8, latency=3),
        ul2=CacheConfig(64 * KB, 8, latency=16),
    ).with_content(
        next_lines=0, prev_lines=0, depth_threshold=3,
        reinforcement=reinforcement,
    )


def _run_side(reinforcement: bool):
    memory, nodes = build_chain()
    config = _machine(reinforcement)
    hierarchy = CacheHierarchy(config, memory)
    memsys = TimingMemorySystem(
        config, hierarchy,
        StridePrefetcher(
            config.stride, config.line_size,
            address_bits=config.content.address_bits,
        ),
        ContentPrefetcher(config.content, config.line_size),
        result=TimingResult("fig3"),
    )
    events = []
    # Demand miss on A: the chain launches.
    memsys.load(nodes["A"], _PC, 0)
    memsys.drain()
    issued_after_miss = memsys.result.content.issued
    events.append(
        "demand miss on A: chain prefetched %s (depths 1..%d); "
        "depth threshold %d reached, %s not requested"
        % (", ".join(LABELS[1:1 + issued_after_miss]),
           issued_after_miss, config.content.depth_threshold,
           LABELS[1 + issued_after_miss]
           if 1 + issued_after_miss < len(LABELS) else "nothing")
    )
    # Demand hit on the prefetched B.
    memsys.load(nodes["B"], _PC, memsys.now + 100)
    memsys.drain()
    extended = memsys.result.content.issued - issued_after_miss
    if reinforcement:
        events.append(
            "demand hit on B: depth promoted to 0, line rescanned "
            "(%d rescans), chain extended by %d line(s) -> E in flight"
            % (memsys.result.rescans, extended)
        )
    else:
        events.append(
            "demand hit on B: no reinforcement, no rescan, chain stays "
            "terminated (%d new prefetches)" % extended
        )
    resident = [
        label for label in LABELS
        if memsys.hier.l2.peek(
            memsys.hier.dtlb.peek(nodes[label]) & ~63
        ) is not None
    ] if memsys.hier.dtlb.peek(nodes["A"]) is not None else []
    return events, issued_after_miss, extended, resident, memsys


def run() -> ExperimentResult:
    rows = []
    narrative = []
    for reinforcement in (False, True):
        side = "PATH REINFORCEMENT" if reinforcement else "PREFETCH CHAINING"
        events, first, extended, resident, memsys = _run_side(reinforcement)
        narrative.append("%s:" % side)
        narrative.extend("  " + event for event in events)
        rows.append([
            side,
            first,
            extended,
            memsys.result.rescans,
            " ".join(resident),
        ])
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: prefetch chaining and path reinforcement",
        headers=["side", "chain prefetches", "after hit on B", "rescans",
                 "resident lines"],
        rows=rows,
        notes="\n".join(narrative),
    )


def verify() -> None:
    """Assert the paper's A-through-E storyline (used by tests)."""
    _, first_nr, extended_nr, _, memsys_nr = _run_side(False)
    assert first_nr == 3, "chaining must stop at depth 3 (B, C, D)"
    assert extended_nr == 0, "without reinforcement the hit adds nothing"
    assert memsys_nr.result.rescans == 0
    _, first_r, extended_r, _, memsys_r = _run_side(True)
    assert first_r == 3
    assert extended_r >= 1, "reinforcement must extend the chain to E"
    assert memsys_r.result.rescans >= 1
