import sys
from repro.experiments.runner import main
sys.exit(main())
