"""Section 4.2.2 — the contribution of TLB prefetching.

Doubles the DTLB from 64 to 1024 entries.  The paper observes the content
prefetcher's speedup barely moves (12.6% -> 12.3%), concluding (a) TLB
prefetching is a minor contributor — the content prefetcher cannot be
replaced by a bigger TLB — and (b) speculative walks are not polluting the
TLB (pollution would make speedups *rise* with size).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    timing_speedups,
)
from repro.stats.metrics import arithmetic_mean

__all__ = ["TLB_SIZES", "run"]

TLB_SIZES = (64, 128, 256, 512, 1024)


def run(
    scale: float = 0.1,
    benchmarks=REPRESENTATIVES,
    sizes=TLB_SIZES,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    series = {}
    for entries in sizes:
        config = model_machine().with_dtlb(entries=entries)
        baseline_config = config.with_content(enabled=False)
        speedups = timing_speedups(
            config, benchmarks, scale, seed=seed,
            baseline_config=baseline_config,
        )
        mean = arithmetic_mean(speedups.values())
        series[entries] = mean
        rows.append([str(entries), "%.4f" % mean,
                     "%.1f%%" % (100 * (mean - 1.0))])
    return ExperimentResult(
        experiment_id="tlb",
        title="Section 4.2.2: Content-prefetcher speedup vs DTLB size",
        headers=["DTLB entries", "mean speedup", "gain"],
        rows=rows,
        notes=(
            "Expected: nearly flat, with at most a small decline as the "
            "TLB grows — TLB prefetching is a minor contributor and the "
            "content prefetcher is not replaceable by a larger TLB."
        ),
        extra={"series": series},
    )
