"""Section 3.5 limit study — cache pollution from bad prefetches.

"Bad prefetches were injected on every idle bus cycle to force evictions,
resulting in cache pollution.  This study showed that a low accuracy
prefetcher can lead to an average 3% performance reduction."

We reproduce it by running the stride-only baseline with and without the
memory system's pollution injector (junk lines filled into the UL2
whenever the bus is idle) and reporting the slowdown.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    run_timing,
)
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import build_benchmark

__all__ = ["run"]


def run(
    scale: float = 0.1,
    benchmarks=REPRESENTATIVES,
    seed: int = 1,
) -> ExperimentResult:
    config = model_machine().with_content(enabled=False)
    rows = []
    slowdowns = {}
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        clean = run_timing(config, workload)
        polluted = run_timing(config, workload, inject_pollution=True)
        slowdown = polluted.cycles / clean.cycles if clean.cycles else 0.0
        slowdowns[name] = slowdown
        rows.append([
            name,
            "%.0f" % clean.cycles,
            "%.0f" % polluted.cycles,
            "%+.1f%%" % (100 * (slowdown - 1.0)),
        ])
    mean = arithmetic_mean(slowdowns.values())
    rows.append(["average", "", "", "%+.1f%%" % (100 * (mean - 1.0))])
    return ExperimentResult(
        experiment_id="pollution",
        title=(
            "Section 3.5 limit study: slowdown from injected bad prefetches"
        ),
        headers=["benchmark", "clean cycles", "polluted cycles", "slowdown"],
        rows=rows,
        notes=(
            "Expected: a few percent average performance reduction — the "
            "reason prefetchers that fill directly into the cache must "
            "maintain reasonable accuracy."
        ),
        extra={"slowdowns": slowdowns, "mean_slowdown": mean},
    )
