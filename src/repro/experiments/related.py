"""Extended comparison with dependence-based prefetching (reference [12]).

The paper's introduction positions CDP against Roth et al.'s
dependence-based scheme: stateful and precise versus stateless and eager.
This experiment quantifies that contrast in the functional metric space
(coverage / accuracy, Equations 1–2) on the pointer-intensive benchmarks:

* **content** — stateless scanning; issues many speculative candidates,
  accuracy bounded by the matcher;
* **dependence** — correlation-table driven; issues only addresses a
  consumer load will really compute, so accuracy is high, but coverage is
  bounded by what its table has seen (first-touch misses of non-recurrent
  loads stay uncovered).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    model_machine,
    run_functional,
    warmup_uops_for,
)
from repro.prefetch.dependence import simulate_value_coverage
from repro.workloads.suite import build_benchmark

__all__ = ["run"]

DEFAULT_BENCHMARKS = ("tpcc-2", "verilog-func", "specjbb-vsnet", "b2c")


def run(
    scale: float = 0.2,
    benchmarks=DEFAULT_BENCHMARKS,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    series = {}
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        warmup = warmup_uops_for(workload.trace)
        content_result = run_functional(
            model_machine(), workload, warmup_uops=warmup
        )
        dependence = simulate_value_coverage(
            workload, model_machine(), warmup_uops=warmup
        )
        series[name] = {
            "content": (content_result.coverage("content"),
                        content_result.accuracy("content")),
            "dependence": (dependence["coverage"], dependence["accuracy"]),
        }
        rows.append([
            name,
            "%.1f%%" % (100 * series[name]["content"][0]),
            "%.1f%%" % (100 * series[name]["content"][1]),
            "%.1f%%" % (100 * series[name]["dependence"][0]),
            "%.1f%%" % (100 * series[name]["dependence"][1]),
        ])
    return ExperimentResult(
        experiment_id="related",
        title=(
            "Content-directed vs dependence-based prefetching "
            "(functional coverage/accuracy)"
        ),
        headers=["benchmark", "CDP coverage", "CDP accuracy",
                 "DEP coverage", "DEP accuracy"],
        rows=rows,
        notes=(
            "Extended comparison (reference [12]).  Functional metrics "
            "ignore timeliness, which flatters dependence prefetching: it "
            "issues each address only one producer-load ahead of its use, "
            "so on serial chains its timing benefit is small — the "
            "run-ahead limitation the paper cites as CDP's motivation.  "
            "Read this table as precision-vs-eagerness, not performance."
        ),
        extra={"series": series},
    )
