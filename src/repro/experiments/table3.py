"""Table 3 — the Markov prefetcher system configurations.

A configuration dump: the two equal-silicon splits of the original 1 MB
UL2 between cache and Markov STAB, plus the unbounded markov_big setup.
Verifies the byte budgets convert to the entry counts the simulator uses.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig11 import MARKOV_CONFIGS

__all__ = ["run"]


def run() -> ExperimentResult:
    rows = []
    for label, config in MARKOV_CONFIGS.items():
        markov = config.markov
        if not markov.enabled:
            stab = "-"
        elif markov.unbounded:
            stab = "unbounded"
        else:
            stab = "%d KB (%d entries, %d-way)" % (
                markov.stab_size_bytes // 1024,
                markov.entries,
                markov.associativity,
            )
        rows.append([
            label,
            stab,
            "%d KB, %d-way" % (
                config.ul2.size_bytes // 1024, config.ul2.associativity
            ),
        ])
    return ExperimentResult(
        experiment_id="table3",
        title="Table 3: Markov prefetcher system configurations",
        headers=["configuration", "Markov STAB", "UL2 cache"],
        rows=rows,
        extra={"configs": MARKOV_CONFIGS},
    )
