"""Table 2 — instructions, µops, and L2 MPTU per benchmark.

Runs every benchmark through the functional simulator twice (1 MB and 4 MB
UL2) and reports the paper's columns.  Absolute MPTU values differ from the
paper (our traces are synthetic and scaled), but the shape must hold: the
suite spans two orders of magnitude of MPTU, the Workstation netlist
benchmarks are the most miss-intensive, and capacity-bound benchmarks lose
most of their misses at 4 MB while footprint-exceeding ones do not.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    model_machine,
    run_functional,
    warmup_uops_for,
)
from repro.workloads.suite import SUITE_OF, benchmark_names, build_benchmark

__all__ = ["run"]


def run(
    scale: float = 0.25,
    benchmarks=None,
    seed: int = 1,
) -> ExperimentResult:
    if benchmarks is None:
        benchmarks = benchmark_names()
    config_1mb = model_machine(l2_equiv_mb=1).with_content(enabled=False)
    config_4mb = model_machine(l2_equiv_mb=4).with_content(enabled=False)
    rows = []
    mptu_by_bench = {}
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        warmup = warmup_uops_for(workload.trace)
        mptus = []
        for config in (config_1mb, config_4mb):
            result = run_functional(config, workload, warmup_uops=warmup)
            mptus.append(result.mptu)
        mptu_by_bench[name] = tuple(mptus)
        rows.append([
            SUITE_OF[name],
            name,
            "{:,}".format(workload.trace.instruction_count),
            "{:,}".format(workload.trace.uop_count),
            "%.2f" % mptus[0],
            "%.2f" % mptus[1],
        ])
    return ExperimentResult(
        experiment_id="table2",
        title=(
            "Table 2: Instructions, uops, and L2 MPTU (1 MB / 4 MB UL2)"
        ),
        headers=["Suite", "Benchmark", "Instructions", "uops",
                 "MPTU (1 MB)", "MPTU (4 MB)"],
        rows=rows,
        extra={"mptu": mptu_by_bench},
    )
