"""Figure 9 — speedup: prefetch depth vs previous/next-line width.

The central timing sweep of Section 4.2.1.  Axes:

* width: (prev, next) line counts ``p0.n0 p0.n1 p0.n2 p0.n3 p0.n4 p1.n0
  p1.n1`` (the paper's horizontal axis);
* depth threshold: 3, 5, 9;
* path reinforcement: off ("nr") and on ("reinf").

Expected shapes (Section 4.2.1's findings):

1. without reinforcement, deeper is better (depth 9 > 5 > 3): a terminated
   chain needs a demand miss to restart;
2. with reinforcement the ordering *reverses* — depth 3 wins, because
   chains never die and shallow thresholds limit bad speculation and
   rescan pressure;
3. previous-line prefetching does not pay on average (recurrence pointers
   point at node starts);
4. the best configuration is reinforcement + depth 3 + p0.n3.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    REPRESENTATIVES,
    model_machine,
    timing_speedups,
)
from repro.stats.metrics import arithmetic_mean

__all__ = ["WIDTHS", "DEPTHS", "run", "best_configuration"]

WIDTHS = ((0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (1, 0), (1, 1))
DEPTHS = (3, 5, 9)


def run(
    scale: float = 0.1,
    benchmarks=REPRESENTATIVES,
    widths=WIDTHS,
    depths=DEPTHS,
    seed: int = 1,
) -> ExperimentResult:
    baseline_cache: dict = {}
    base_config = model_machine()
    series: dict = {}
    rows = []
    for reinforcement in (False, True):
        for depth in depths:
            label = "depth.%d-%s" % (
                depth, "reinf" if reinforcement else "nr"
            )
            line = {}
            for prev_lines, next_lines in widths:
                config = base_config.with_content(
                    depth_threshold=depth,
                    reinforcement=reinforcement,
                    prev_lines=prev_lines,
                    next_lines=next_lines,
                )
                speedups = timing_speedups(
                    config, benchmarks, scale, seed=seed,
                    baseline_cache=baseline_cache,
                )
                width_label = "p%d.n%d" % (prev_lines, next_lines)
                line[width_label] = arithmetic_mean(speedups.values())
            series[label] = line
            rows.append(
                [label] + ["%.4f" % line[w] for w in sorted(line)]
            )
    width_labels = sorted(
        {"p%d.n%d" % width for width in widths}
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Figure 9: Speedup — prefetch depth vs next-line count",
        headers=["series"] + width_labels,
        rows=rows,
        notes=(
            "Expected: without reinforcement deeper wins; with "
            "reinforcement depth 3 wins; prev-line does not pay; best is "
            "reinf + depth 3 + p0.n3."
        ),
        extra={"series": series},
    )


def best_configuration(result: ExperimentResult) -> tuple:
    """(series label, width label, speedup) of the sweep's maximum."""
    best = None
    for label, line in result.extra["series"].items():
        for width_label, value in line.items():
            if best is None or value > best[2]:
                best = (label, width_label, value)
    return best
