"""Figure 10 — UL2 load-request distribution plus per-benchmark speedups.

For every benchmark, runs the tuned machine (reinforcement, depth 3,
p0.n3) and reports the five stacked categories — stride full/partial,
content full/partial, and remaining UL2 misses — as fractions of the
would-be misses, alongside the benchmark's individual speedup.

Expected shape: of the loads the stride prefetcher does not cover, the
content prefetcher fully eliminates a large fraction and partially masks
more ("fully eliminating 43% of the load misses ... at least partially
masking 60%"), and most useful content prefetches are *full* (72% in the
paper) — the timeliness argument for on-chip placement.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    model_machine,
    run_timing,
)
from repro.stats.metrics import arithmetic_mean
from repro.workloads.suite import benchmark_names, build_benchmark

__all__ = ["run"]


def run(
    scale: float = 0.1,
    benchmarks=None,
    seed: int = 1,
) -> ExperimentResult:
    if benchmarks is None:
        benchmarks = benchmark_names()
    config = model_machine()
    baseline_config = config.with_content(enabled=False)
    rows = []
    distributions = {}
    speedups = {}
    full_fractions = []
    for name in benchmarks:
        workload = build_benchmark(name, scale=scale, seed=seed)
        baseline = run_timing(baseline_config, workload)
        enhanced = run_timing(config, workload)
        dist = enhanced.load_request_distribution()
        distributions[name] = dist
        speedup = enhanced.speedup_over(baseline)
        speedups[name] = speedup
        if enhanced.content.useful:
            full_fractions.append(enhanced.content.full_fraction)
        rows.append([
            name,
            "%.1f%%" % (100 * dist["str-full"]),
            "%.1f%%" % (100 * dist["str-part"]),
            "%.1f%%" % (100 * dist["cpf-full"]),
            "%.1f%%" % (100 * dist["cpf-part"]),
            "%.1f%%" % (100 * dist["ul2-miss"]),
            "%.3f" % speedup,
        ])
    mean_speedup = arithmetic_mean(speedups.values())
    mean_full = arithmetic_mean(full_fractions) if full_fractions else 0.0
    rows.append([
        "average", "", "", "", "", "", "%.3f" % mean_speedup,
    ])
    return ExperimentResult(
        experiment_id="fig10",
        title="Figure 10: Distribution of UL2 cache load requests",
        headers=["benchmark", "str-full", "str-part", "cpf-full",
                 "cpf-part", "ul2-miss", "speedup"],
        rows=rows,
        notes=(
            "Content full-masking fraction of its useful prefetches: "
            "%.0f%% (paper: 72%%)." % (100 * mean_full)
        ),
        extra={
            "distributions": distributions,
            "speedups": speedups,
            "mean_speedup": mean_speedup,
            "content_full_fraction": mean_full,
        },
    )
