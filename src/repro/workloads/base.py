"""Shared workload-construction plumbing."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.memory.allocator import HeapAllocator
from repro.memory.backing import BackingMemory
from repro.memory.layout import MemoryLayout
from repro.trace.ops import Trace, TraceBuilder

__all__ = ["BuiltWorkload", "WorkloadContext"]

_WORD = 4


@dataclass
class BuiltWorkload:
    """A fully built workload: memory image + µop trace + metadata."""

    name: str
    memory: BackingMemory
    trace: Trace
    layout: MemoryLayout
    footprint_bytes: int


class WorkloadContext:
    """Everything a workload kernel needs while building.

    Bundles the backing memory, heap allocator, trace builder, PRNG, and a
    PC assigner (each static load/store site gets a distinct program
    counter, which is what the PC-indexed stride prefetcher trains on).
    """

    def __init__(
        self,
        name: str,
        seed: int = 0,
        alignment: int = 4,
        scatter: int = 0,
        layout: MemoryLayout | None = None,
        page_size: int = 4096,
    ) -> None:
        self.layout = layout if layout is not None else MemoryLayout()
        self.memory = BackingMemory(page_size=page_size)
        self.allocator = HeapAllocator(
            self.layout.heap, alignment=alignment, scatter=scatter, seed=seed
        )
        # Low static-data region: addresses here have all-zero upper
        # compare bits, exercising the matcher's filter-bit logic.
        self.static_allocator = HeapAllocator(
            self.layout.static, alignment=alignment, seed=seed + 1
        )
        self.rng = random.Random(seed)
        # Footprint-optimising compilers pack structures on 2-byte
        # boundaries (Section 4.1's reason for choosing 1 align bit); the
        # structure builders add a 2-byte pad to node sizes when packed so
        # pointers genuinely land on odd word boundaries.
        self.packed = alignment < 4
        self.trace = TraceBuilder(name)
        self.name = name
        self._next_pc = self.layout.code.base
        self._stack_cursor = self.layout.stack.end - 64

    # -- code addresses -----------------------------------------------------

    def new_pc(self) -> int:
        """A fresh static instruction address (one per load/store site)."""
        pc = self._next_pc
        self._next_pc += 4
        return pc

    # -- stack addresses ----------------------------------------------------

    def stack_slot(self, words: int = 1) -> int:
        """Reserve *words* 4-byte slots of stack space; returns the base."""
        self._stack_cursor -= words * _WORD
        if self._stack_cursor < self.layout.stack.base:
            raise MemoryError("simulated stack exhausted")
        return self._stack_cursor

    # -- memory writing helpers ----------------------------------------------

    def write_word(self, address: int, value: int) -> None:
        self.memory.write_word(address, value)

    def write_random_payload(self, address: int, words: int) -> None:
        """Fill payload slots with realistic non-pointer data.

        A mix of small integers, large magnitudes, and raw random bits —
        the "data values and random bit patterns" the matcher must reject.
        """
        for i in range(words):
            roll = self.rng.random()
            if roll < 0.5:
                value = self.rng.randrange(0, 4096)
            elif roll < 0.8:
                value = self.rng.randrange(0, 1 << 20)
            else:
                value = self.rng.getrandbits(32)
            self.memory.write_word(address + i * _WORD, value)

    # -- finishing ------------------------------------------------------------

    def build(self, uops_per_instruction: float = 1.5) -> BuiltWorkload:
        trace = self.trace.build(uops_per_instruction=uops_per_instruction)
        return BuiltWorkload(
            name=self.name,
            memory=self.memory,
            trace=trace,
            layout=self.layout,
            footprint_bytes=self.allocator.bytes_in_use,
        )
