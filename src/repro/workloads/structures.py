"""Builders that lay real linked data structures into simulated memory.

Every builder writes genuine little-endian pointer words into the backing
memory — these are the bytes the content prefetcher later scans.  Builders
return lightweight handle objects recording the node addresses so the
traversal kernels can emit traces with the true dependence chains.

Node layouts (all offsets in bytes, 4-byte words):

* list node:    ``[next][payload ...]``
* tree node:    ``[left][right][key][payload ...]``
* chain node:   ``[next][key][payload ...]`` (hash-table chains)
* object:       ``[payload ...]`` (pointer-array targets)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import WorkloadContext

__all__ = [
    "LinkedList",
    "BinaryTree",
    "HashTable",
    "PointerArray",
    "DataArray",
    "Graph",
    "build_linked_list",
    "build_binary_tree",
    "build_hash_table",
    "build_pointer_array",
    "build_data_array",
    "build_graph",
]

_WORD = 4


@dataclass
class LinkedList:
    head: int
    nodes: list  # node addresses in link order
    payload_words: int
    # Word offset of the ``next`` pointer within the node.  Real structs
    # place link pointers anywhere; when the node spans multiple cache
    # lines and the pointer sits past the first line, chained prefetching
    # alone cannot follow the list — the paper's motivation for "wider"
    # next-line prefetches (Section 3.4.3).
    next_offset_words: int = 0

    @property
    def node_size(self) -> int:
        return (1 + self.payload_words) * _WORD

    @property
    def next_offset(self) -> int:
        return self.next_offset_words * _WORD


@dataclass
class BinaryTree:
    root: int
    nodes: list  # node addresses, heap-indexed (BFS order)
    keys: list
    payload_words: int

    @property
    def node_size(self) -> int:
        return (3 + self.payload_words) * _WORD


@dataclass
class HashTable:
    bucket_base: int
    num_buckets: int
    chains: list = field(default_factory=list)  # list of chains (addr lists)
    payload_words: int = 2

    @property
    def node_size(self) -> int:
        return (2 + self.payload_words) * _WORD


@dataclass
class PointerArray:
    array_base: int
    targets: list
    payload_words: int


@dataclass
class DataArray:
    base: int
    words: int


def build_linked_list(
    ctx: WorkloadContext,
    num_nodes: int,
    payload_words: int = 6,
    locality: float = 1.0,
    next_offset_words: int = 0,
) -> LinkedList:
    """Allocate and link *num_nodes* list nodes.

    *locality* is the fraction of links that follow allocation order:
    1.0 gives a fully sequential heap walk (next-line prefetching shines),
    0.0 a fully shuffled pointer chase (pure chain prefetching).

    *next_offset_words* places the ``next`` pointer that many words into
    the node (0 = header-first, the classic layout).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if not 0 <= next_offset_words <= payload_words:
        raise ValueError("next_offset_words outside the node")
    size = (1 + payload_words) * _WORD + (2 if ctx.packed else 0)
    addresses = [ctx.allocator.alloc(size) for _ in range(num_nodes)]
    order = _partial_shuffle(addresses, 1.0 - locality, ctx.rng)
    next_offset = next_offset_words * _WORD

    def _fill_node(here: int, nxt: int) -> None:
        ctx.write_random_payload(here, 1 + payload_words)
        ctx.write_word(here + next_offset, nxt)

    for here, nxt in zip(order, order[1:]):
        _fill_node(here, nxt)
    _fill_node(order[-1], 0)
    return LinkedList(
        head=order[0], nodes=order, payload_words=payload_words,
        next_offset_words=next_offset_words,
    )


def _partial_shuffle(items: list, disorder: float, rng) -> list:
    """Shuffle a *disorder* fraction of positions, keeping the rest."""
    if disorder <= 0.0:
        return list(items)
    result = list(items)
    indices = [i for i in range(len(result)) if rng.random() < disorder]
    shuffled = [result[i] for i in indices]
    rng.shuffle(shuffled)
    for slot, value in zip(indices, shuffled):
        result[slot] = value
    return result


def build_binary_tree(
    ctx: WorkloadContext,
    num_nodes: int,
    payload_words: int = 4,
    bfs_allocation: bool = True,
) -> BinaryTree:
    """Build a balanced BST over keys ``0..num_nodes-1``.

    With *bfs_allocation* the nodes are allocated level by level, so the
    hot upper levels share cache lines; otherwise allocation order is
    shuffled (an aged heap).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    size = (3 + payload_words) * _WORD + (2 if ctx.packed else 0)
    addresses = [ctx.allocator.alloc(size) for _ in range(num_nodes)]
    if not bfs_allocation:
        ctx.rng.shuffle(addresses)
    # Heap-shaped balanced tree: node i has children 2i+1, 2i+2; an
    # in-order labelling assigns sorted keys.
    keys = [0] * num_nodes
    counter = [0]

    def _label(i: int) -> None:
        if i >= num_nodes:
            return
        _label(2 * i + 1)
        keys[i] = counter[0]
        counter[0] += 1
        _label(2 * i + 2)

    _label(0)
    for i, addr in enumerate(addresses):
        left = 2 * i + 1
        right = 2 * i + 2
        ctx.write_word(addr, addresses[left] if left < num_nodes else 0)
        ctx.write_word(
            addr + _WORD, addresses[right] if right < num_nodes else 0
        )
        ctx.write_word(addr + 2 * _WORD, keys[i])
        ctx.write_random_payload(addr + 3 * _WORD, payload_words)
    return BinaryTree(
        root=addresses[0], nodes=addresses, keys=keys,
        payload_words=payload_words,
    )


def build_hash_table(
    ctx: WorkloadContext,
    num_buckets: int,
    num_items: int,
    payload_words: int = 2,
) -> HashTable:
    """Bucket array plus chained nodes.

    Hash tables are the paper's example of pointer-intensive code that does
    *not* follow long recursive paths (Section 3.2): chains are short, so
    the win comes from the first-level pointer scan, not deep chaining.
    """
    if num_buckets <= 0 or num_items < 0:
        raise ValueError("bad hash-table shape")
    bucket_base = ctx.allocator.alloc(num_buckets * _WORD)
    heads = [0] * num_buckets
    chains: list[list[int]] = [[] for _ in range(num_buckets)]
    node_size = (2 + payload_words) * _WORD + (2 if ctx.packed else 0)
    for key in range(num_items):
        bucket = ctx.rng.randrange(num_buckets)
        addr = ctx.allocator.alloc(node_size)
        ctx.write_word(addr, heads[bucket])  # next = old head
        ctx.write_word(addr + _WORD, key)
        ctx.write_random_payload(addr + 2 * _WORD, payload_words)
        heads[bucket] = addr
        chains[bucket].insert(0, addr)
    for bucket, head in enumerate(heads):
        ctx.write_word(bucket_base + bucket * _WORD, head)
    table = HashTable(
        bucket_base=bucket_base,
        num_buckets=num_buckets,
        chains=chains,
        payload_words=payload_words,
    )
    return table


def build_pointer_array(
    ctx: WorkloadContext,
    num_objects: int,
    payload_words: int = 8,
    shuffle_targets: bool = True,
) -> PointerArray:
    """An array of pointers to heap objects (e.g. a Java object table)."""
    if num_objects <= 0:
        raise ValueError("num_objects must be positive")
    array_base = ctx.allocator.alloc(num_objects * _WORD)
    object_size = payload_words * _WORD + (2 if ctx.packed else 0)
    targets = [
        ctx.allocator.alloc(object_size) for _ in range(num_objects)
    ]
    if shuffle_targets:
        ctx.rng.shuffle(targets)
    for i, target in enumerate(targets):
        ctx.write_word(array_base + i * _WORD, target)
        ctx.write_random_payload(target, payload_words)
    return PointerArray(
        array_base=array_base, targets=targets, payload_words=payload_words
    )


def build_data_array(ctx: WorkloadContext, num_words: int) -> DataArray:
    """A plain data array (the stride prefetcher's home turf)."""
    if num_words <= 0:
        raise ValueError("num_words must be positive")
    base = ctx.allocator.alloc(num_words * _WORD)
    ctx.write_random_payload(base, num_words)
    return DataArray(base=base, words=num_words)


@dataclass
class Graph:
    nodes: list          # node record addresses
    edge_arrays: list    # per-node edge-array base addresses
    edges: list          # per-node list of successor *indices*
    payload_words: int

    @property
    def node_size(self) -> int:
        return (2 + self.payload_words) * _WORD


def build_graph(
    ctx: WorkloadContext,
    num_nodes: int,
    avg_degree: int = 3,
    payload_words: int = 8,
) -> Graph:
    """A pointer graph with per-node edge arrays (netlist-shaped).

    Node record: ``[degree][edge_array_ptr][payload ...]``; the edge array
    is a separately allocated block of node pointers.  This is the layout
    gate-level netlists and circuit simulators use, and it exercises a
    two-level pointer pattern: following an edge costs a dependent load of
    the edge array, then of the target node.
    """
    if num_nodes <= 0 or avg_degree <= 0:
        raise ValueError("graph must have nodes and edges")
    size = (2 + payload_words) * _WORD + (2 if ctx.packed else 0)
    nodes = [ctx.allocator.alloc(size) for _ in range(num_nodes)]
    edges = []
    edge_arrays = []
    for index, record in enumerate(nodes):
        degree = max(1, min(
            num_nodes - 1,
            int(ctx.rng.expovariate(1.0 / avg_degree)) + 1,
        ))
        successors = [
            ctx.rng.randrange(num_nodes) for _ in range(degree)
        ]
        array = ctx.allocator.alloc(degree * _WORD)
        for slot, successor in enumerate(successors):
            ctx.write_word(array + slot * _WORD, nodes[successor])
        ctx.write_word(record, degree)
        ctx.write_word(record + _WORD, array)
        ctx.write_random_payload(record + 2 * _WORD, payload_words)
        edges.append(successors)
        edge_arrays.append(array)
    return Graph(
        nodes=nodes, edge_arrays=edge_arrays, edges=edges,
        payload_words=payload_words,
    )
