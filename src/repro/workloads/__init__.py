"""Workload generators — the stand-ins for the paper's LIT traces.

The paper drives its simulator with proprietary checkpoints of commercial
applications (Table 2).  We cannot use those, so this package builds the
closest synthetic equivalents: each workload *allocates real linked data
structures* (lists, trees, hash tables, pointer arrays) into the simulated
32-bit address space — so the bytes the content prefetcher scans contain
genuine pointers — and then emits a µop trace of traversals with true
load→load dependences, interleaved compute work, branches, and stride/array
phases.

:mod:`repro.workloads.suite` defines the fifteen named benchmarks of
Table 2 as parameter profiles (working-set size, structure mix, pointer
density, compute per load, heap fragmentation) chosen so the *relative*
behaviours the paper reports — which workloads are pointer-bound, which
stride-friendly, the 1 MB vs 4 MB MPTU spread — are exercised.
"""

from repro.workloads.base import BuiltWorkload, WorkloadContext
from repro.workloads.mixed import BenchmarkProfile, MixedWorkload
from repro.workloads.suite import (
    SUITE_OF,
    WORKLOAD_PROFILES,
    benchmark_names,
    build_benchmark,
    get_profile,
)

__all__ = [
    "BenchmarkProfile",
    "BuiltWorkload",
    "MixedWorkload",
    "SUITE_OF",
    "WORKLOAD_PROFILES",
    "WorkloadContext",
    "benchmark_names",
    "build_benchmark",
    "get_profile",
]
