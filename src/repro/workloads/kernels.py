"""Traversal kernels: emit µop traces over built structures.

A kernel object represents one *static* code site: it allocates its program
counters once (so the PC-indexed stride prefetcher sees stable sites) and
can then be invoked repeatedly to emit dynamic instances.  Loads carry true
dependences — a pointer chase is a chain of loads each depending on the
previous one, which is what serialises it in the timing model.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadContext
from repro.workloads.structures import (
    BinaryTree,
    DataArray,
    HashTable,
    LinkedList,
    PointerArray,
)

__all__ = [
    "ListTraversalKernel",
    "TreeSearchKernel",
    "HashLookupKernel",
    "ArrayScanKernel",
    "PointerArrayKernel",
    "GraphWalkKernel",
    "StackKernel",
]

_WORD = 4


def _spread_offsets(loads: int, payload_words: int) -> list:
    """Word offsets (1-based past the header) spread across the payload."""
    if loads <= 0:
        return []
    if loads == 1:
        return [1]
    step = (payload_words - 1) / (loads - 1)
    return [1 + int(round(j * step)) for j in range(loads)]


class ListTraversalKernel:
    """Walk a linked list: the canonical recursive pointer chase."""

    def __init__(
        self,
        ctx: WorkloadContext,
        lst: LinkedList,
        payload_loads: int = 2,
        work_per_node: int = 4,
        store_probability: float = 0.0,
        mispredict_rate: float = 0.01,
    ) -> None:
        self.ctx = ctx
        self.lst = lst
        self.payload_loads = min(payload_loads, lst.payload_words)
        self.work_per_node = work_per_node
        self.store_probability = store_probability
        self.mispredict_rate = mispredict_rate
        self._pc_head = ctx.new_pc()
        self._pc_next = ctx.new_pc()
        self._pc_payload = [ctx.new_pc() for _ in range(self.payload_loads)]
        # Payload loads spread across the node — large nodes span cache
        # lines, so the tail loads land in the line *after* the one the
        # next-pointer scan found (the reason "wider" next-line
        # prefetching pays, Section 3.4.3).
        self._payload_offsets = _spread_offsets(
            self.payload_loads, lst.payload_words
        )
        self._pc_store = ctx.new_pc()
        self._head_slot = ctx.stack_slot()
        ctx.write_word(self._head_slot, lst.head)

    def emit(self, max_nodes: int | None = None, start: int = 0) -> int:
        """Emit one traversal; returns the number of nodes visited."""
        trace = self.ctx.trace
        rng = self.ctx.rng
        nodes = self.lst.nodes[start:]
        if max_nodes is not None:
            nodes = nodes[:max_nodes]
        if not nodes:
            return 0
        next_offset = self.lst.next_offset
        prev = trace.load(self._head_slot, self._pc_head)
        for node in nodes:
            current = trace.load(node + next_offset, self._pc_next, dep=prev)
            for offset, pc in zip(self._payload_offsets, self._pc_payload):
                trace.load(node + offset * _WORD, pc, dep=prev)
            if self.store_probability and rng.random() < self.store_probability:
                offset = (1 + rng.randrange(self.lst.payload_words)) * _WORD
                trace.store(node + offset, self._pc_store)
            trace.compute(self.work_per_node)
            trace.branch(rng.random() < self.mispredict_rate)
            prev = current
        return len(nodes)


class TreeSearchKernel:
    """Random descents of a balanced BST (index-structure behaviour)."""

    def __init__(
        self,
        ctx: WorkloadContext,
        tree: BinaryTree,
        work_per_level: int = 3,
        mispredict_rate: float = 0.15,
    ) -> None:
        self.ctx = ctx
        self.tree = tree
        self.work_per_level = work_per_level
        self.mispredict_rate = mispredict_rate
        self._pc_root = ctx.new_pc()
        self._pc_key = ctx.new_pc()
        self._pc_child = ctx.new_pc()
        self._root_slot = ctx.stack_slot()
        ctx.write_word(self._root_slot, tree.root)

    def emit(self, num_searches: int = 1, key_range=None) -> int:
        """Emit *num_searches* random lookups; returns nodes visited.

        *key_range* restricts the target keys to ``[low, high)`` — hot-set
        searches share the same subtrees.
        """
        trace = self.ctx.trace
        rng = self.ctx.rng
        tree = self.tree
        count = len(tree.nodes)
        low, high = key_range if key_range is not None else (0, count)
        high = min(high, count)
        visited = 0
        for _ in range(num_searches):
            target = rng.randrange(low, max(low + 1, high))
            prev = trace.load(self._root_slot, self._pc_root)
            index = 0
            while index < count:
                node = tree.nodes[index]
                trace.load(node + 2 * _WORD, self._pc_key, dep=prev)
                trace.compute(self.work_per_level)
                visited += 1
                key = tree.keys[index]
                if key == target:
                    trace.branch(False)
                    break
                go_left = target < key
                trace.branch(rng.random() < self.mispredict_rate)
                child_offset = 0 if go_left else _WORD
                child_index = 2 * index + (1 if go_left else 2)
                if child_index >= count:
                    break
                prev = trace.load(node + child_offset, self._pc_child, dep=prev)
                index = child_index
        return visited


class HashLookupKernel:
    """Random probes of a chained hash table.

    The bucket-array access is data-dependent (random index, one PC) so the
    stride prefetcher cannot cover it, and chains are short — the paper's
    example of pointer code without long recursive paths (Section 3.2).
    """

    def __init__(
        self,
        ctx: WorkloadContext,
        table: HashTable,
        hash_work: int = 6,
        mispredict_rate: float = 0.05,
    ) -> None:
        self.ctx = ctx
        self.table = table
        self.hash_work = hash_work
        self.mispredict_rate = mispredict_rate
        self._pc_bucket = ctx.new_pc()
        self._pc_next = ctx.new_pc()
        self._pc_key = ctx.new_pc()

    def emit(self, num_lookups: int = 1, bucket_range=None) -> int:
        """Emit *num_lookups* probes; returns chain nodes visited.

        *bucket_range* restricts probes to ``[low, high)`` (hot buckets).
        """
        trace = self.ctx.trace
        rng = self.ctx.rng
        table = self.table
        low, high = (
            bucket_range if bucket_range is not None
            else (0, table.num_buckets)
        )
        high = min(high, table.num_buckets)
        visited = 0
        for _ in range(num_lookups):
            bucket = rng.randrange(low, max(low + 1, high))
            trace.compute(self.hash_work)
            head = trace.load(
                table.bucket_base + bucket * _WORD, self._pc_bucket
            )
            prev = head
            for node in table.chains[bucket]:
                trace.load(node + _WORD, self._pc_key, dep=prev)
                trace.compute(2)
                trace.branch(rng.random() < self.mispredict_rate)
                visited += 1
                prev = trace.load(node, self._pc_next, dep=prev)
        return visited


class ArrayScanKernel:
    """Sequential array sweep — regular traffic the stride prefetcher owns."""

    def __init__(
        self,
        ctx: WorkloadContext,
        array: DataArray,
        stride_words: int = 1,
        work_per_element: int = 2,
    ) -> None:
        self.ctx = ctx
        self.array = array
        self.stride_words = stride_words
        self.work_per_element = work_per_element
        self._pc_load = ctx.new_pc()

    def emit(self, max_elements: int | None = None, start_word: int = 0) -> int:
        trace = self.ctx.trace
        array = self.array
        elements = (array.words - start_word) // self.stride_words
        if max_elements is not None:
            elements = min(elements, max_elements)
        address = array.base + start_word * _WORD
        step = self.stride_words * _WORD
        for _ in range(max(0, elements)):
            trace.load(address, self._pc_load)
            trace.compute(self.work_per_element)
            address += step
        if elements > 0:
            trace.branch(False)
        return max(0, elements)


class PointerArrayKernel:
    """Walk an array of pointers, dereferencing each target.

    The array itself is stride-predictable; the dereferences are not —
    the composition the paper's combined stride+content system targets.
    """

    def __init__(
        self,
        ctx: WorkloadContext,
        parray: PointerArray,
        payload_loads: int = 2,
        work_per_object: int = 5,
        mispredict_rate: float = 0.02,
    ) -> None:
        self.ctx = ctx
        self.parray = parray
        self.payload_loads = min(payload_loads, parray.payload_words)
        self.work_per_object = work_per_object
        self.mispredict_rate = mispredict_rate
        self._pc_slot = ctx.new_pc()
        self._pc_deref = [ctx.new_pc() for _ in range(self.payload_loads)]
        self._deref_offsets = _spread_offsets(
            self.payload_loads, parray.payload_words
        )

    def emit(self, max_objects: int | None = None, start: int = 0) -> int:
        trace = self.ctx.trace
        rng = self.ctx.rng
        parray = self.parray
        count = len(parray.targets) - start
        if max_objects is not None:
            count = min(count, max_objects)
        for i in range(start, start + max(0, count)):
            pointer = trace.load(
                parray.array_base + i * _WORD, self._pc_slot
            )
            target = parray.targets[i]
            for offset, pc in zip(self._deref_offsets, self._pc_deref):
                trace.load(target + (offset - 1) * _WORD, pc, dep=pointer)
            trace.compute(self.work_per_object)
            trace.branch(rng.random() < self.mispredict_rate)
        return max(0, count)


class StackKernel:
    """Local-variable churn: loads/stores that mostly hit the L1."""

    def __init__(self, ctx: WorkloadContext, slots: int = 16) -> None:
        self.ctx = ctx
        base = ctx.stack_slot(slots)
        self._addresses = [base + i * _WORD for i in range(slots)]
        for address in self._addresses:
            ctx.write_word(address, ctx.rng.getrandbits(16))
        self._pc_load = ctx.new_pc()
        self._pc_store = ctx.new_pc()

    def emit(self, num_ops: int = 8) -> None:
        trace = self.ctx.trace
        rng = self.ctx.rng
        for _ in range(num_ops):
            address = rng.choice(self._addresses)
            if rng.random() < 0.4:
                trace.store(address, self._pc_store)
            else:
                trace.load(address, self._pc_load)
            trace.compute(1)


class GraphWalkKernel:
    """Random walks over a pointer graph (netlist-style traversal).

    Each step is a three-deep dependent chain: node header -> edge array
    -> next node — harder for any prefetcher than a linked list, because
    two dependent loads separate consecutive node addresses.
    """

    def __init__(
        self,
        ctx: WorkloadContext,
        graph,
        work_per_node: int = 6,
        payload_loads: int = 1,
        mispredict_rate: float = 0.05,
    ) -> None:
        self.ctx = ctx
        self.graph = graph
        self.work_per_node = work_per_node
        self.payload_loads = min(payload_loads, graph.payload_words)
        self.mispredict_rate = mispredict_rate
        self._pc_entry = ctx.new_pc()
        self._pc_degree = ctx.new_pc()
        self._pc_edges = ctx.new_pc()
        self._pc_edge_slot = ctx.new_pc()
        self._pc_payload = [ctx.new_pc() for _ in range(self.payload_loads)]
        self._entry_slot = ctx.stack_slot()

    def emit(self, steps: int = 32, start: int | None = None) -> int:
        """Emit one random walk of *steps* node visits; returns visits."""
        trace = self.ctx.trace
        rng = self.ctx.rng
        graph = self.graph
        index = start if start is not None else rng.randrange(
            len(graph.nodes)
        )
        self.ctx.write_word(self._entry_slot, graph.nodes[index])
        prev = trace.load(self._entry_slot, self._pc_entry)
        visited = 0
        for _ in range(steps):
            node = graph.nodes[index]
            trace.load(node, self._pc_degree, dep=prev)
            edges_ptr = trace.load(node + 4, self._pc_edges, dep=prev)
            for j, pc in enumerate(self._pc_payload):
                trace.load(node + (2 + j) * 4, pc, dep=prev)
            trace.compute(self.work_per_node)
            successors = graph.edges[index]
            choice = rng.randrange(len(successors))
            trace.branch(rng.random() < self.mispredict_rate)
            prev = trace.load(
                graph.edge_arrays[index] + choice * 4,
                self._pc_edge_slot, dep=edges_ptr,
            )
            index = successors[choice]
            visited += 1
        return visited
