"""The Table 2 benchmark suite, as synthetic profiles.

Fifteen profiles mirror the paper's workloads across its six suites
(Internet, Multimedia, Productivity, Server, Workstation, Runtime).  Each
profile's knobs were chosen to reproduce the workload's *published
character*, not its code — all sized against the 1/4-silicon model machine
(UL2 256 KB for "1 MB", 1 MB for "4 MB"):

* ``hot_set_kb`` places the hot working set relative to the two UL2
  sizes: between them makes the benchmark capacity-bound (``quake``,
  ``tpcc-*``, ``creation`` lose most misses at the 4 MB equivalent,
  matching their Table 2 ratios), well under both keeps it flat
  (``b2c``, ``proE``);
* large cold-streamed footprints with low ``hot_fraction`` give the
  Workstation netlist benchmarks their flat-high MPTU at both sizes;
* pointer-phase weights follow the suite descriptions (OLTP = index
  trees + hash joins; CAD = netlist graph chasing; Java = object tables
  + young lists);
* uops-per-instruction ratios come from Table 2's columns.

The module-level cache means a benchmark's memory image and trace are built
once per (name, scale, seed) and shared — the image is read-only to the
simulators, so sweeps reuse it safely.
"""

from __future__ import annotations

import os

from repro import perf
from repro.workloads.base import BuiltWorkload
from repro.workloads.mixed import BenchmarkProfile, MixedWorkload

__all__ = [
    "WORKLOAD_PROFILES",
    "SUITE_OF",
    "benchmark_names",
    "get_profile",
    "build_benchmark",
    "warm_cache",
    "clear_cache",
]

_PROFILES = [
    BenchmarkProfile(
        name="b2b", suite="Internet", target_uops=1_600_000,
        footprint_kb=3072,
        mix={"list": 0.30, "hash": 0.30, "tree": 0.20, "array": 0.10,
             "static": 0.08, "stack": 0.10},
        list_locality=0.60, payload_words=28, next_offset_frac=0.50, hot_set_kb=24, hot_fraction=0.85,
        work_per_node=54, scatter=4,
        uops_per_instruction=1.35,
    ),
    BenchmarkProfile(
        name="b2c", suite="Internet", target_uops=450_000,
        footprint_kb=48,
        mix={"hash": 0.40, "list": 0.20, "array": 0.25, "static": 0.10, "stack": 0.15},
        list_locality=0.7, payload_words=24, next_offset_frac=0.00, hot_set_kb=32,
        work_per_node=36,
        uops_per_instruction=1.67,
    ),
    BenchmarkProfile(
        name="quake", suite="Multimedia", target_uops=600_000,
        footprint_kb=768,
        mix={"array": 0.55, "parray": 0.25, "list": 0.10,
             "static": 0.05, "stack": 0.10},
        list_locality=0.9, payload_words=16, next_offset_frac=0.30,
        hot_set_kb=224,
        work_per_node=18,
        uops_per_instruction=1.51,
    ),
    BenchmarkProfile(
        name="speech", suite="Productivity", target_uops=540_000,
        footprint_kb=512,
        mix={"hash": 0.30, "array": 0.30, "tree": 0.25, "static": 0.08, "stack": 0.15},
        list_locality=0.6, payload_words=26, next_offset_frac=0.50, hot_set_kb=128,
        work_per_node=30,
        uops_per_instruction=1.46,
    ),
    BenchmarkProfile(
        name="rc3", suite="Productivity", target_uops=450_000,
        footprint_kb=256,
        mix={"list": 0.25, "array": 0.40, "hash": 0.20, "static": 0.10, "stack": 0.15},
        list_locality=0.7, payload_words=25, next_offset_frac=0.40, hot_set_kb=96,
        work_per_node=36, alignment=2,
        uops_per_instruction=1.57,
    ),
    BenchmarkProfile(
        name="creation", suite="Productivity", target_uops=480_000,
        footprint_kb=512,
        mix={"array": 0.45, "tree": 0.25, "list": 0.20, "static": 0.08, "stack": 0.10},
        list_locality=0.7, payload_words=25, next_offset_frac=0.40, hot_set_kb=128,
        work_per_node=30, alignment=2,
        uops_per_instruction=1.76,
    ),
    BenchmarkProfile(
        name="tpcc-1", suite="Server", target_uops=600_000,
        footprint_kb=384,
        mix={"tree": 0.35, "hash": 0.35, "list": 0.15, "array": 0.10,
             "static": 0.06, "stack": 0.05},
        list_locality=0.4, payload_words=28, next_offset_frac=0.60, hot_set_kb=144,
        work_per_node=24, scatter=8,
        uops_per_instruction=1.76,
    ),
    BenchmarkProfile(
        name="tpcc-2", suite="Server", target_uops=660_000,
        footprint_kb=448,
        mix={"tree": 0.35, "hash": 0.35, "list": 0.20, "array": 0.05,
             "static": 0.06, "stack": 0.05},
        list_locality=0.35, payload_words=28, next_offset_frac=0.60, hot_set_kb=144,
        work_per_node=24, scatter=8,
        uops_per_instruction=1.77,
    ),
    BenchmarkProfile(
        name="tpcc-3", suite="Server", target_uops=660_000,
        footprint_kb=512,
        mix={"tree": 0.40, "hash": 0.30, "list": 0.20, "array": 0.05,
             "static": 0.06, "stack": 0.05},
        list_locality=0.35, payload_words=28, next_offset_frac=0.60, hot_set_kb=144,
        work_per_node=24, scatter=8,
        uops_per_instruction=1.72,
    ),
    BenchmarkProfile(
        name="tpcc-4", suite="Server", target_uops=600_000,
        footprint_kb=416,
        mix={"tree": 0.35, "hash": 0.30, "list": 0.20, "array": 0.10,
             "static": 0.06, "stack": 0.05},
        list_locality=0.4, payload_words=28, next_offset_frac=0.60, hot_set_kb=144,
        work_per_node=24, scatter=8,
        uops_per_instruction=1.73,
    ),
    BenchmarkProfile(
        name="verilog-func", suite="Workstation", target_uops=2_400_000,
        footprint_kb=4096,
        mix={"list": 0.45, "parray": 0.30, "tree": 0.15, "static": 0.06, "stack": 0.10},
        list_locality=0.6, payload_words=30, next_offset_frac=0.50, hot_set_kb=24, hot_fraction=0.65,
        work_per_node=42, scatter=4,
        uops_per_instruction=1.53,
    ),
    BenchmarkProfile(
        name="verilog-gate", suite="Workstation", target_uops=2_800_000,
        footprint_kb=6144,
        mix={"list": 0.60, "parray": 0.30, "static": 0.05, "stack": 0.10},
        list_locality=0.6, payload_words=24, next_offset_frac=0.55, hot_set_kb=16, hot_fraction=0.55,
        work_per_node=30, scatter=4,
        uops_per_instruction=1.23,
    ),
    BenchmarkProfile(
        name="proE", suite="Workstation", target_uops=450_000,
        footprint_kb=80,
        mix={"array": 0.40, "tree": 0.30, "list": 0.20, "static": 0.10, "stack": 0.10},
        list_locality=0.8, payload_words=26, next_offset_frac=0.00, hot_set_kb=32,
        work_per_node=36,
        uops_per_instruction=1.46,
    ),
    BenchmarkProfile(
        name="slsb", suite="Workstation", target_uops=1_800_000,
        footprint_kb=4096,
        mix={"parray": 0.40, "list": 0.30, "hash": 0.20, "static": 0.06, "stack": 0.10},
        list_locality=0.8, payload_words=32, next_offset_frac=0.50, hot_set_kb=24, hot_fraction=0.65,
        work_per_node=48, scatter=2,
        uops_per_instruction=1.66,
    ),
    BenchmarkProfile(
        name="specjbb-vsnet", suite="Runtime", target_uops=660_000,
        footprint_kb=1280,
        mix={"parray": 0.45, "list": 0.25, "tree": 0.20, "static": 0.05, "stack": 0.10},
        list_locality=0.85, payload_words=36, next_offset_frac=0.60, hot_set_kb=48,
        work_per_node=24,
        uops_per_instruction=1.52,
    ),
]

WORKLOAD_PROFILES = {profile.name: profile for profile in _PROFILES}
SUITE_OF = {profile.name: profile.suite for profile in _PROFILES}

# One benchmark per suite — the subset Figure 1 plots, reused by the
# heavier timing sweeps to bound runtime.
REPRESENTATIVES = (
    "b2c", "quake", "rc3", "tpcc-2", "verilog-func", "specjbb-vsnet",
)

_CACHE: dict = {}


def benchmark_names() -> list:
    """All benchmark names, in Table 2 order."""
    return [profile.name for profile in _PROFILES]


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by Table 2 name."""
    try:
        return WORKLOAD_PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (known: %s)"
            % (name, ", ".join(benchmark_names()))
        ) from None


def build_benchmark(
    name: str, scale: float = 1.0, seed: int = 1,
    cache_dir: str | None = None,
) -> BuiltWorkload:
    """Build (or fetch from cache) one benchmark's image and trace.

    An in-process cache always applies.  With *cache_dir* (or the
    ``REPRO_WORKLOAD_CACHE`` environment variable) set, built workloads
    are additionally persisted to disk via :mod:`repro.trace.serialize`,
    so later processes skip regeneration.
    """
    key = (name, round(scale, 6), seed)
    built = _CACHE.get(key)
    if built is not None:
        perf.counter("workload-cache-hits")
        return built
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_WORKLOAD_CACHE")
    path = None
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        from repro.trace.serialize import TRACE_FORMAT_VERSION

        path = os.path.join(
            cache_dir, "%s-%s-%d.v%d.cdpt"
            % (name, round(scale, 6), seed, TRACE_FORMAT_VERSION)
        )
        if os.path.exists(path) and os.path.exists(path + ".img"):
            from repro.memory.layout import MemoryLayout
            from repro.trace.serialize import load_workload

            with perf.stage("workload-load"):
                trace, memory = load_workload(path)
            built = BuiltWorkload(
                name=name, memory=memory, trace=trace,
                layout=MemoryLayout(), footprint_bytes=0,
            )
            _CACHE[key] = built
            perf.counter("workload-disk-cache-hits")
            return built
    with perf.stage("workload-build"):
        built = MixedWorkload(get_profile(name), seed=seed).build(scale)
    perf.counter("workload-builds")
    _CACHE[key] = built
    if path is not None:
        from repro.trace.serialize import save_workload

        save_workload(built.trace, built.memory, path)
    return built


def warm_cache(
    names=None, scales=(1.0,), seed: int = 1,
    cache_dir: str | None = None,
) -> int:
    """Pre-build workload images into the suite cache; returns the count.

    Sweeps over machine *configurations* reuse one image per (name,
    scale, seed) key, so warming the cache once up front means no
    configuration pays a rebuild — this is what the benchmark harness's
    session fixture calls, and what a long ``repro-experiments all`` run
    effectively gets from the module cache.
    """
    if names is None:
        names = benchmark_names()
    built = 0
    for scale in scales:
        for name in names:
            build_benchmark(name, scale=scale, seed=seed, cache_dir=cache_dir)
            built += 1
    return built


def clear_cache() -> None:
    _CACHE.clear()
