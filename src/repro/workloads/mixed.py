"""Profile-driven mixed workloads.

A :class:`BenchmarkProfile` captures the knobs that differentiate the
paper's fifteen workloads: total heap footprint (what determines the
1 MB-vs-4 MB MPTU behaviour of Table 2), the phase mix (how
pointer-intensive the benchmark is and through which structures), compute
density (the work available to hide latency), branch behaviour, heap
fragmentation and allocation alignment.

:class:`MixedWorkload` turns a profile into a concrete
:class:`~repro.workloads.base.BuiltWorkload`: it sizes and builds the
structures, then interleaves traversal phases (weighted, seeded, resumable
cursors per structure) until the µop target is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import BuiltWorkload, WorkloadContext
from repro.workloads.kernels import (
    ArrayScanKernel,
    HashLookupKernel,
    ListTraversalKernel,
    PointerArrayKernel,
    StackKernel,
    TreeSearchKernel,
)
from repro.workloads.structures import (
    build_binary_tree,
    build_data_array,
    build_hash_table,
    build_linked_list,
    build_pointer_array,
)

__all__ = ["BenchmarkProfile", "MixedWorkload"]

_WORD = 4
_KB = 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """Parameter set standing in for one Table 2 workload."""

    name: str
    suite: str
    target_uops: int
    footprint_kb: int
    # Relative phase weights; zero-weight phases are not even built.
    mix: dict = field(default_factory=dict)
    # Fraction of list links that follow allocation order (next-line
    # prefetch friendliness).
    list_locality: float = 0.6
    payload_words: int = 6
    work_per_node: int = 4
    mispredict_rate: float = 0.02
    store_probability: float = 0.05
    # Where the list-node ``next`` pointer lives, as a fraction of the
    # payload (0.0 = header-first; ~0.5 puts it past the first cache line
    # of a multi-line node, making next-line width necessary to chain).
    next_offset_frac: float = 0.0
    # Temporal locality: fraction of phase chunks directed at the hot
    # subset, and the fraction of each structure that is hot.  Real
    # applications concentrate references this way — it is why Table 2's
    # MPTU values are single digits despite multi-megabyte footprints.
    hot_fraction: float = 0.9
    hot_set_fraction: float = 0.12
    # Absolute hot-working-set budget for randomly-probed structures
    # (trees, hash tables), in KB.  Sized between the model machine's two
    # UL2 sizes it makes the benchmark capacity-bound (Table 2's straddle).
    hot_set_kb: int = 32
    # Heap shape.
    alignment: int = 4
    scatter: int = 0
    uops_per_instruction: float = 1.5

    def weight(self, phase: str) -> float:
        return self.mix.get(phase, 0.0)


# How footprint is carved up: bytes per element of each structure kind.
def _node_bytes(payload_words: int, header_words: int) -> int:
    return (header_words + payload_words) * _WORD


class MixedWorkload:
    """Builds the memory image and trace for one profile."""

    PHASES = ("list", "tree", "hash", "parray", "array", "static", "stack")

    def __init__(self, profile: BenchmarkProfile, seed: int = 1) -> None:
        self.profile = profile
        self.seed = seed

    def build(self, scale: float = 1.0) -> BuiltWorkload:
        """Construct the workload; *scale* scales the trace length only.

        The heap footprint is *not* scaled: footprints are sized relative
        to the model machine's cache sizes (see
        :func:`repro.experiments.common.model_machine`), and that ratio is
        what drives every cache-behaviour result in the paper.  Shorter
        traces just make fewer passes over the working set.
        """
        profile = self.profile
        ctx = WorkloadContext(
            profile.name,
            seed=self.seed,
            alignment=profile.alignment,
            scatter=profile.scatter,
        )
        target_uops = max(1000, int(profile.target_uops * scale))
        footprint = max(32 * _KB, profile.footprint_kb * _KB)
        kernels, weights = self._build_structures(ctx, footprint)
        self._emit(ctx, kernels, weights, target_uops)
        return ctx.build(uops_per_instruction=profile.uops_per_instruction)

    # ------------------------------------------------------------------

    def _build_structures(self, ctx: WorkloadContext, footprint: int):
        profile = self.profile
        total_weight = sum(
            profile.weight(p) for p in self.PHASES if p != "stack"
        )
        if total_weight <= 0:
            raise ValueError("profile %s has no memory phases" % profile.name)
        kernels: dict = {}
        weights: dict = {}

        def share(phase: str) -> int:
            return int(footprint * profile.weight(phase) / total_weight)

        next_offset_words = int(
            profile.next_offset_frac * profile.payload_words
        )
        if profile.weight("list") > 0:
            node = _node_bytes(profile.payload_words, 1)
            count = max(16, share("list") // node)
            lst = build_linked_list(
                ctx, count, profile.payload_words, profile.list_locality,
                next_offset_words=next_offset_words,
            )
            kernels["list"] = ListTraversalKernel(
                ctx, lst,
                payload_loads=2,
                work_per_node=profile.work_per_node,
                store_probability=profile.store_probability,
                mispredict_rate=profile.mispredict_rate,
            )
            weights["list"] = profile.weight("list")
        if profile.weight("tree") > 0:
            node = _node_bytes(profile.payload_words, 3)
            count = max(15, share("tree") // node)
            tree = build_binary_tree(
                ctx, count, profile.payload_words,
                bfs_allocation=profile.list_locality > 0.5,
            )
            kernels["tree"] = TreeSearchKernel(
                ctx, tree,
                work_per_level=profile.work_per_node,
                mispredict_rate=max(0.05, profile.mispredict_rate * 3),
            )
            weights["tree"] = profile.weight("tree")
        if profile.weight("hash") > 0:
            hash_payload = max(2, profile.payload_words // 2)
            node = _node_bytes(hash_payload, 2)
            items = max(64, share("hash") // node)
            buckets = max(16, items // 4)
            table = build_hash_table(
                ctx, buckets, items, payload_words=hash_payload
            )
            kernels["hash"] = HashLookupKernel(
                ctx, table,
                hash_work=profile.work_per_node + 2,
                mispredict_rate=profile.mispredict_rate,
            )
            weights["hash"] = profile.weight("hash")
        if profile.weight("parray") > 0:
            per_object = _node_bytes(profile.payload_words, 0) + _WORD
            count = max(32, share("parray") // per_object)
            parray = build_pointer_array(
                ctx, count, profile.payload_words,
                shuffle_targets=profile.list_locality < 0.8,
            )
            kernels["parray"] = PointerArrayKernel(
                ctx, parray,
                payload_loads=2,
                work_per_object=profile.work_per_node,
                mispredict_rate=profile.mispredict_rate,
            )
            weights["parray"] = profile.weight("parray")
        if profile.weight("array") > 0:
            words = max(256, share("array") // _WORD)
            array = build_data_array(ctx, words)
            kernels["array"] = ArrayScanKernel(
                ctx, array,
                # 16-byte elements: sweeps cover their footprint fast
                # enough to cycle it several times per trace (the
                # capacity-miss behaviour of the Multimedia suite), and
                # the 64-byte miss stride trains the stride prefetcher.
                stride_words=4,
                work_per_element=max(1, profile.work_per_node // 3),
            )
            weights["array"] = profile.weight("array")
        if profile.weight("static") > 0:
            # Global tables in the low region (all-zero upper compare
            # bits): a pointer-linked structure whose prefetchability
            # depends entirely on the matcher's filter bits.
            node = _node_bytes(profile.payload_words, 1)
            budget = min(share("static"), ctx.layout.static.size * 3 // 4)
            count = max(16, budget // node)
            saved = ctx.allocator
            ctx.allocator = ctx.static_allocator
            try:
                lst = build_linked_list(
                    ctx, count, profile.payload_words, profile.list_locality,
                    next_offset_words=next_offset_words,
                )
            finally:
                ctx.allocator = saved
            kernels["static"] = ListTraversalKernel(
                ctx, lst,
                payload_loads=2,
                work_per_node=profile.work_per_node,
                store_probability=profile.store_probability,
                mispredict_rate=profile.mispredict_rate,
            )
            weights["static"] = profile.weight("static")
        if profile.weight("stack") > 0:
            kernels["stack"] = StackKernel(ctx)
            weights["stack"] = profile.weight("stack")
        return kernels, weights

    def _emit(
        self, ctx: WorkloadContext, kernels: dict, weights: dict,
        target_uops: int,
    ) -> None:
        profile = self.profile
        rng = ctx.rng
        phases = list(kernels)
        phase_weights = [weights[p] for p in phases]
        cold_cursors = {p: 0 for p in phases}
        hot_cursors = {p: 0 for p in phases}
        # Hot windows are sized in absolute bytes (``hot_set_kb`` per
        # structure): this is the knob that makes a benchmark
        # capacity-bound.  A hot working set between the model machine's
        # two UL2 sizes misses at the small cache and fits at the large
        # one — exactly the behaviour Table 2's MPTU pairs imply.
        def hot_window_fraction(structure_bytes: int) -> float:
            if structure_bytes <= 0:
                return 1.0
            return min(1.0, profile.hot_set_kb * 1024.0 / structure_bytes)

        def structure_bytes_of(phase: str, kernel) -> int:
            if phase in ("list", "static"):
                return len(kernel.lst.nodes) * kernel.lst.node_size
            if phase == "parray":
                return len(kernel.parray.targets) * (
                    (kernel.parray.payload_words + 1) * _WORD
                )
            return 0

        def chunk_start(phase: str, kernel, total: int, hot: bool) -> int:
            if total <= 0:
                return 0
            if hot:
                fraction = hot_window_fraction(
                    structure_bytes_of(phase, kernel)
                )
                hot_span = max(1, int(total * fraction))
                return hot_cursors[phase] % hot_span
            return cold_cursors[phase] % total

        def advance(phase: str, total: int, hot: bool, start: int,
                    step: int) -> None:
            if hot:
                hot_cursors[phase] = start + step
            else:
                cold_cursors[phase] = (start + step) % max(1, total)

        while ctx.trace.uop_count < target_uops:
            phase = rng.choices(phases, weights=phase_weights)[0]
            kernel = kernels[phase]
            hot = rng.random() < profile.hot_fraction
            if phase in ("list", "static"):
                total = len(kernel.lst.nodes)
                start = chunk_start(phase, kernel, total, hot)
                visited = kernel.emit(max_nodes=64, start=start)
                advance(phase, total, hot, start, visited)
            elif phase == "tree":
                count = len(kernel.tree.nodes)
                if hot:
                    fraction = hot_window_fraction(
                        count * kernel.tree.node_size
                    )
                    hot_keys = max(1, int(count * fraction))
                    kernel.emit(num_searches=4, key_range=(0, hot_keys))
                else:
                    kernel.emit(num_searches=4)
            elif phase == "hash":
                buckets = kernel.table.num_buckets
                if hot:
                    items = sum(len(c) for c in kernel.table.chains)
                    fraction = hot_window_fraction(
                        items * kernel.table.node_size
                    )
                    hot_buckets = max(1, int(buckets * fraction))
                    kernel.emit(num_lookups=8, bucket_range=(0, hot_buckets))
                else:
                    kernel.emit(num_lookups=8)
            elif phase == "parray":
                total = len(kernel.parray.targets)
                start = chunk_start(phase, kernel, total, hot)
                visited = kernel.emit(max_objects=64, start=start)
                advance(phase, total, hot, start, visited)
            elif phase == "array":
                # Arrays simply cycle: a sweep working set larger than the
                # cache misses at that size and fits at the next — the
                # capacity behaviour of the Multimedia suite.
                total = kernel.array.words
                start = cold_cursors[phase] % max(1, total)
                visited = kernel.emit(max_elements=256, start_word=start)
                cold_cursors[phase] = (
                    (start + visited * kernel.stride_words) % max(1, total)
                )
            else:  # stack
                kernel.emit(num_ops=12)
