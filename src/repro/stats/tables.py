"""Plain-text table rendering shared by the experiment drivers."""

from __future__ import annotations

__all__ = ["render_table", "format_percent"]


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string ("0.126" -> "12.6%")."""
    return "%.*f%%" % (digits, 100.0 * value)


def render_table(headers, rows, title: str = "") -> str:
    """Render rows (sequences of stringifiable cells) as aligned text."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
