"""Plain-text chart rendering for experiment outputs.

No plotting dependencies are available offline, so the CLI renders series
as unicode-free ASCII charts: good enough to eyeball the shapes the paper
plots (MPTU transients, coverage/accuracy sweeps, speedup lines).
"""

from __future__ import annotations

__all__ = ["line_chart", "bar_chart", "stacked_bar"]


def _scale(value: float, low: float, high: float, width: int) -> int:
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return max(0, min(width, int(round(ratio * width))))


def line_chart(
    series: dict,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render named y-series (equal length) as an ASCII line chart.

    Each series gets a marker character; points are plotted on a
    height x width grid with a shared y-scale.
    """
    if not series:
        return "(no data)"
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0
    length = max(len(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for i, value in enumerate(values):
            x = _scale(i, 0, max(1, length - 1), width - 1)
            y = height - 1 - _scale(value, low, high, height - 1)
            grid[y][x] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append("%10.3g +%s" % (high, "-" * width))
    for row in grid:
        lines.append("           |%s" % "".join(row))
    lines.append("%10.3g +%s" % (low, "-" * width))
    legend = "   ".join(
        "%s %s" % (markers[i % len(markers)], label)
        for i, label in enumerate(series)
    )
    lines.append("           " + legend)
    return "\n".join(lines)


def bar_chart(
    values: dict,
    width: int = 50,
    title: str = "",
    baseline: float | None = None,
) -> str:
    """Render labelled values as horizontal bars.

    With *baseline*, bars start at the baseline and show the delta
    (useful for speedups around 1.0).
    """
    if not values:
        return "(no data)"
    lines = [title] if title else []
    label_width = max(len(str(label)) for label in values)
    numbers = list(values.values())
    if baseline is None:
        low, high = min(0.0, min(numbers)), max(numbers)
        for label, value in values.items():
            bar = "#" * _scale(value, low, high, width)
            lines.append("%-*s %8.3f |%s" % (label_width, label, value, bar))
    else:
        span = max(abs(v - baseline) for v in numbers) or 1.0
        half = width // 2
        for label, value in values.items():
            delta = value - baseline
            size = _scale(abs(delta), 0, span, half)
            if delta >= 0:
                bar = " " * half + "|" + "#" * size
            else:
                bar = " " * (half - size) + "#" * size + "|"
            lines.append("%-*s %8.3f %s" % (label_width, label, value, bar))
    return "\n".join(lines)


def stacked_bar(
    rows: dict,
    width: int = 50,
    title: str = "",
    legend: dict | None = None,
) -> str:
    """Render rows of category->fraction dicts as stacked unit bars.

    Used for Figure 10's load-request distribution.  *legend* maps
    category name to the single character used for its segment.
    """
    if not rows:
        return "(no data)"
    categories = list(next(iter(rows.values())))
    if legend is None:
        default_chars = "#=+-. "
        legend = {
            category: default_chars[i % len(default_chars)]
            for i, category in enumerate(categories)
        }
    lines = [title] if title else []
    label_width = max(len(str(label)) for label in rows)
    for label, fractions in rows.items():
        bar = []
        for category in categories:
            segment = int(round(fractions.get(category, 0.0) * width))
            bar.append(legend[category] * segment)
        lines.append("%-*s |%s" % (label_width, label,
                                   "".join(bar)[:width]))
    lines.append(
        " " * label_width + "  " + "  ".join(
            "%s=%s" % (char, category)
            for category, char in legend.items()
        )
    )
    return "\n".join(lines)
