"""Metrics and reporting helpers."""

from repro.stats.metrics import (
    arithmetic_mean,
    geometric_mean,
    mptu,
    speedup,
)
from repro.stats.tables import format_percent, render_table

__all__ = [
    "arithmetic_mean",
    "format_percent",
    "geometric_mean",
    "mptu",
    "render_table",
    "speedup",
]
