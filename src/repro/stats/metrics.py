"""Core evaluation metrics.

The paper's metric definitions:

* **MPTU** — misses per 1000 µops: "the average number of demand data
  fetches that will miss during the execution of 1000 µops" (Section 2.2).
* **coverage** = prefetch hits / misses without prefetching (Equation 1).
* **accuracy** = useful prefetches / prefetches generated (Equation 2).
* **speedup** — baseline cycles / enhanced cycles, with the baseline always
  including the stride prefetcher.
"""

from __future__ import annotations

import math

__all__ = ["mptu", "speedup", "arithmetic_mean", "geometric_mean"]


def mptu(misses: int, uops: int) -> float:
    """Demand misses per 1000 µops."""
    if uops <= 0:
        return 0.0
    return 1000.0 * misses / uops


def speedup(baseline_cycles: float, enhanced_cycles: float) -> float:
    """Paper convention: >1.0 means the enhanced machine is faster."""
    if enhanced_cycles <= 0:
        return 0.0
    return baseline_cycles / enhanced_cycles


def arithmetic_mean(values) -> float:
    """Plain average; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
