"""Core evaluation metrics.

The paper's metric definitions:

* **MPTU** — misses per 1000 µops: "the average number of demand data
  fetches that will miss during the execution of 1000 µops" (Section 2.2).
* **coverage** = prefetch hits / misses without prefetching (Equation 1).
* **accuracy** = useful prefetches / prefetches generated (Equation 2).
* **speedup** — baseline cycles / enhanced cycles, with the baseline always
  including the stride prefetcher.
"""

from __future__ import annotations

import math
import warnings

__all__ = ["mptu", "speedup", "arithmetic_mean", "geometric_mean"]


def mptu(misses: int, uops: int) -> float:
    """Demand misses per 1000 µops."""
    if uops <= 0:
        return 0.0
    return 1000.0 * misses / uops


def speedup(baseline_cycles: float, enhanced_cycles: float) -> float:
    """Paper convention: >1.0 means the enhanced machine is faster."""
    if enhanced_cycles <= 0:
        return 0.0
    return baseline_cycles / enhanced_cycles


def arithmetic_mean(values) -> float:
    """Plain average; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values) -> float:
    """Geometric mean of the positive values; 0.0 for an empty sequence.

    Non-positive points (a crashed or degenerate run reports ``speedup``
    0.0) are *skipped with a warning* rather than aborting the whole
    aggregation: one bad benchmark in a sweep must not discard every
    other result.  The warning reports how many points were dropped.
    """
    values = list(values)
    positive = [v for v in values if v > 0]
    skipped = len(values) - len(positive)
    if skipped:
        warnings.warn(
            "geometric_mean skipped %d non-positive value%s "
            "(of %d points)"
            % (skipped, "" if skipped == 1 else "s", len(values)),
            RuntimeWarning,
            stacklevel=2,
        )
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
