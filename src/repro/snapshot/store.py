"""Atomic, versioned on-disk snapshot format.

A snapshot file holds one pickled payload::

    {
        "version": SNAPSHOT_VERSION,
        "fingerprint": {...},   # run identity: config/trace/warm-up
        "digest": "....",       # state_digest of "state" at save time
        "meta": {...},          # progress info (uop position, wall time)
        "state": {...},         # TimingSimulator.state_dict() tree
    }

Writes are crash-safe: the payload goes to a same-directory temp file
which is fsynced and then ``os.replace``d over the target, so a reader
only ever sees the previous complete snapshot or the new complete
snapshot — never a torn file.  Loads re-hash the state tree and compare
against the stored digest, so silent corruption (a truncated disk, a
hand-edited file) surfaces as a :class:`SnapshotError` with a clear
message rather than a deep simulator crash minutes later.
"""

from __future__ import annotations

import os
import pickle

from repro.snapshot.digest import state_digest

__all__ = ["SNAPSHOT_VERSION", "SnapshotError", "save_snapshot", "load_snapshot"]

#: Bump when the state_dict schema changes incompatibly; loads of other
#: versions fail with a clear error instead of resuming garbage.
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot file is missing, corrupt, or from a different run."""


def save_snapshot(
    path: str,
    state: dict,
    fingerprint: dict,
    meta: dict | None = None,
) -> str:
    """Atomically write *state* to *path*; returns the state's digest."""
    digest = state_digest(state)
    payload = {
        "version": SNAPSHOT_VERSION,
        "fingerprint": fingerprint,
        "digest": digest,
        "meta": dict(meta or {}),
        "state": state,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return digest


def load_snapshot(path: str, expected_fingerprint: dict | None = None) -> dict:
    """Read and validate a snapshot; returns the full payload dict.

    Raises :class:`SnapshotError` if the file is missing, unreadable,
    structurally wrong, version-mismatched, fails its digest check, or —
    when *expected_fingerprint* is given — belongs to a different run.
    """
    if not os.path.exists(path):
        raise SnapshotError("no snapshot file at %s" % path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError) as exc:
        raise SnapshotError(
            "corrupt snapshot %s: %s: %s"
            % (path, type(exc).__name__, exc)
        ) from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise SnapshotError(
            "corrupt snapshot %s: not a snapshot payload" % path
        )
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            "snapshot %s has format version %r; this build reads version %d"
            % (path, version, SNAPSHOT_VERSION)
        )
    recomputed = state_digest(payload["state"])
    if recomputed != payload.get("digest"):
        raise SnapshotError(
            "snapshot %s failed its integrity check "
            "(stored digest %s, recomputed %s)"
            % (path, payload.get("digest"), recomputed)
        )
    if (
        expected_fingerprint is not None
        and payload.get("fingerprint") != expected_fingerprint
    ):
        raise SnapshotError(
            "snapshot %s belongs to a different run: fingerprint %r "
            "does not match expected %r (same config, trace, and warm-up "
            "are required to resume)"
            % (path, payload.get("fingerprint"), expected_fingerprint)
        )
    return payload
