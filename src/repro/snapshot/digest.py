"""Order-stable hashing of component state trees.

A *state tree* is what ``state_dict()`` hooks return: arbitrarily nested
``dict`` / ``list`` / ``tuple`` structures whose leaves are ``None``,
``bool``, ``int``, ``float``, ``str`` or ``bytes``.  :func:`state_digest`
maps such a tree to a short hex digest with two properties the
snapshot/resume machinery depends on:

* **order-stable** — dict entries are hashed in sorted-key order, so two
  trees that differ only in dict insertion history digest identically.
  State where *order is architectural* (LRU chains, FIFO queues, event
  heaps) must therefore be encoded as lists, which hash in sequence
  order — the ``state_dict`` hooks all follow this rule.
* **unambiguous** — every value is hashed with a type tag and an explicit
  length, so no two distinct trees share an encoding (``1`` vs ``"1"``
  vs ``True``, ``["ab"]`` vs ``["a","b"]``).

Floats are encoded via ``float.hex()`` — exact, every bit of the value
participates — so timestamp arithmetic that drifts by one ULP is caught,
not masked by decimal rounding.
"""

from __future__ import annotations

import hashlib

__all__ = ["canonical_bytes", "state_digest"]

#: Digest width in bytes; 16 (128 bits) keeps snapshots and result logs
#: compact while making collisions between two runs of the same trace a
#: non-concern.
_DIGEST_SIZE = 16


def canonical_bytes(tree) -> bytes:
    """Deterministic byte encoding of a state tree (see module docs)."""
    out = bytearray()
    _encode(tree, out)
    return bytes(out)


def state_digest(tree) -> str:
    """Hex digest of a state tree's canonical encoding."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(canonical_bytes(tree))
    return digest.hexdigest()


def _encode(value, out: bytearray) -> None:
    # bool must precede int: True is an int instance.
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        body = str(value).encode()
        out += b"i%d:" % len(body)
        out += body
    elif isinstance(value, float):
        body = value.hex().encode()
        out += b"f%d:" % len(body)
        out += body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"s%d:" % len(body)
        out += body
    elif isinstance(value, (bytes, bytearray)):
        out += b"b%d:" % len(value)
        out += value
    elif isinstance(value, (list, tuple)):
        out += b"l%d:" % len(value)
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += b"d%d:" % len(value)
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    "state-tree dict keys must be str, got %r "
                    "(encode order-significant mappings as lists of pairs)"
                    % (key,)
                )
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise TypeError(
            "unsupported state-tree value %r of type %s"
            % (value, type(value).__name__)
        )
