"""Locate where two supposedly-identical simulations first diverge.

Two entry points:

* :func:`compare_digest_streams` — offline triage: given the
  ``state_digests`` streams two runs recorded (e.g. a resumed run and its
  uninterrupted reference), report the first interval where they differ.
* :func:`find_divergence` — active triage: run two freshly-built
  simulators in lockstep, comparing state digests at a coarse µop
  interval; on the first mismatch, restore both from the last *matching*
  state and replay at a finer interval, repeating until the interval is
  at the requested floor.  The result brackets the first diverging µop
  within ``floor`` µops — narrow enough to diff two ``state_dict()``
  trees by hand or rerun under a debugger.

The lockstep keeps only the last matching state pair in memory (not a
snapshot per boundary), so the search costs two simulations' time at each
refinement level and O(state) memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snapshot.digest import state_digest

__all__ = ["DivergencePoint", "compare_digest_streams", "find_divergence"]

#: Each refinement divides the comparison interval by this factor.
_REFINE_FACTOR = 8


@dataclass(frozen=True)
class DivergencePoint:
    """The first µop interval on which two runs' states differ.

    The runs last agreed at µop ``uop_lo`` (0 = initial state) and first
    provably differ at ``uop_hi``; the true divergence lies in
    ``(uop_lo, uop_hi]``.  ``digest_a`` / ``digest_b`` are the differing
    digests at ``uop_hi`` (``None`` when that run's stream ended early).
    """

    uop_lo: int
    uop_hi: int
    digest_a: str | None
    digest_b: str | None

    def __str__(self) -> str:
        return (
            "runs diverge in uops (%d, %d]: digest %s vs %s"
            % (self.uop_lo, self.uop_hi, self.digest_a, self.digest_b)
        )


def compare_digest_streams(a: list, b: list) -> DivergencePoint | None:
    """First mismatch between two ``[uop, digest]`` streams, else ``None``.

    Streams are compared pairwise in order; a length mismatch counts as a
    divergence at the first missing entry (that run stopped recording —
    usually because it crashed or sampled a different interval).
    """
    last_match = 0
    for index in range(max(len(a), len(b))):
        entry_a = a[index] if index < len(a) else None
        entry_b = b[index] if index < len(b) else None
        if entry_a is None or entry_b is None:
            present = entry_a if entry_a is not None else entry_b
            return DivergencePoint(
                last_match,
                present[0],
                entry_a[1] if entry_a is not None else None,
                entry_b[1] if entry_b is not None else None,
            )
        uop_a, digest_a = entry_a
        uop_b, digest_b = entry_b
        if uop_a != uop_b:
            # Different sampling grids: the comparison is meaningless past
            # this point; report it rather than comparing unlike positions.
            return DivergencePoint(last_match, min(uop_a, uop_b),
                                   digest_a, digest_b)
        if digest_a != digest_b:
            return DivergencePoint(last_match, uop_a, digest_a, digest_b)
        last_match = uop_a
    return None


def _advance_to_boundary(sim, trace, warmup_uops, boundaries):
    """Run *sim* to its next boundary; returns the µop position there,
    or ``None`` when the trace completed."""
    paused = []

    def on_boundary(uop_pos):
        paused.append(uop_pos)
        return False

    cycles = sim.core.run(
        trace, warmup_uops=warmup_uops,
        boundaries=boundaries, on_boundary=on_boundary,
    )
    if cycles is None:
        return paused[-1]
    return None


def find_divergence(
    make_a,
    make_b,
    trace,
    warmup_uops: int = 0,
    every: int = 100_000,
    floor: int = 1_000,
) -> DivergencePoint | None:
    """Bracket the first µop at which two simulations' states diverge.

    *make_a* / *make_b* are zero-argument factories returning a fresh
    :class:`~repro.core.simulator.TimingSimulator` (they must be
    deterministic — each refinement builds new instances and restores
    them from saved state).  Returns ``None`` if the runs never diverge
    (including their final states), else a :class:`DivergencePoint`
    whose interval is at most *floor* µops wide (or the coarsest interval
    that still showed the mismatch, if *floor* ≥ *every*).
    """
    from repro.core.cpu import snapshot_boundaries

    if every <= 0 or floor <= 0:
        raise ValueError("every and floor must be positive")
    sim_a, sim_b = make_a(), make_b()
    state_a, state_b = sim_a.state_dict(), sim_b.state_dict()
    digest_a, digest_b = state_digest(state_a), state_digest(state_b)
    if digest_a != digest_b:
        # The factories disagree before a single µop runs (config or
        # seed mismatch) — not a mid-run divergence.
        return DivergencePoint(0, 0, digest_a, digest_b)
    last_uop = 0
    last_state_a, last_state_b = state_a, state_b

    while True:
        boundaries = snapshot_boundaries(trace.ops, every)
        mismatch = None
        while True:
            uop_a = _advance_to_boundary(sim_a, trace, warmup_uops, boundaries)
            uop_b = _advance_to_boundary(sim_b, trace, warmup_uops, boundaries)
            at = uop_a if uop_a is not None else trace.uop_count
            state_a, state_b = sim_a.state_dict(), sim_b.state_dict()
            digest_a = state_digest(state_a)
            digest_b = state_digest(state_b)
            if digest_a != digest_b:
                mismatch = DivergencePoint(last_uop, at, digest_a, digest_b)
                break
            last_uop = at
            last_state_a, last_state_b = state_a, state_b
            if uop_a is None or uop_b is None:
                return None  # both completed in agreement
        if every <= floor:
            return mismatch
        # Refine: rebuild fresh simulators, restore the last matching
        # state, and replay the offending interval at a finer grain.
        every = max(floor, every // _REFINE_FACTOR)
        sim_a, sim_b = make_a(), make_b()
        sim_a.load_state_dict(last_state_a)
        sim_b.load_state_dict(last_state_b)
