"""Helpers for writing ``state_dict()`` / ``load_state_dict()`` hooks.

Stats containers across the simulator are flat dataclasses of counters
(plus the occasional ``str -> int`` breakdown dict); these two functions
give them exact, copy-safe round-trips without each module hand-rolling
the same field loop.  Components whose state is order-significant (LRU
chains, FIFOs, heaps) encode that state as lists of pairs themselves —
see :mod:`repro.snapshot.digest` for why.
"""

from __future__ import annotations

from dataclasses import fields

__all__ = ["canonical_heap", "dataclass_state", "load_dataclass_state"]


def canonical_heap(heap: list) -> list:
    """A heap's entries in canonical (sorted) order, for serialization.

    A binary heap's internal array layout depends on the exact
    interleaving of pushes and pops, so two implementations that perform
    the same logical work in a different operation order (the batched and
    reference event drains, say) end up with different arrays — and
    different state digests — despite being architecturally identical.

    Sorting fixes that without changing behaviour, because of two facts:

    * every heap in this codebase keys entries by a ``(primary, seq)``
      prefix where *seq* is a unique tie-break counter, so entries are
      **totally ordered** and the pop sequence is a pure function of the
      entry multiset, not of the array layout;
    * a sorted array **is** a valid binary heap, so the canonical form
      loads directly back into ``heapq`` without re-heapifying.

    Serializing ``canonical_heap(h)`` therefore yields layout-independent
    digests while restored runs still pop in exactly the order the
    original would have.
    """
    return sorted(heap)


def _copied(value):
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    return value


def dataclass_state(obj) -> dict:
    """Flat dataclass -> state tree (containers copied, not aliased)."""
    return {f.name: _copied(getattr(obj, f.name)) for f in fields(obj)}


def load_dataclass_state(obj, state: dict) -> None:
    """Restore a flat dataclass from :func:`dataclass_state` output."""
    for f in fields(obj):
        setattr(obj, f.name, _copied(state[f.name]))
