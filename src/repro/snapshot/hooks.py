"""Helpers for writing ``state_dict()`` / ``load_state_dict()`` hooks.

Stats containers across the simulator are flat dataclasses of counters
(plus the occasional ``str -> int`` breakdown dict); these two functions
give them exact, copy-safe round-trips without each module hand-rolling
the same field loop.  Components whose state is order-significant (LRU
chains, FIFOs, heaps) encode that state as lists of pairs themselves —
see :mod:`repro.snapshot.digest` for why.
"""

from __future__ import annotations

from dataclasses import fields

__all__ = ["dataclass_state", "load_dataclass_state"]


def _copied(value):
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    return value


def dataclass_state(obj) -> dict:
    """Flat dataclass -> state tree (containers copied, not aliased)."""
    return {f.name: _copied(getattr(obj, f.name)) for f in fields(obj)}


def load_dataclass_state(obj, state: dict) -> None:
    """Restore a flat dataclass from :func:`dataclass_state` output."""
    for f in fields(obj):
        setattr(obj, f.name, _copied(state[f.name]))
