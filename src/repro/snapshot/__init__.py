"""Deterministic snapshot/resume for timing simulations.

The package gives long timing runs durable, *verifiable* mid-run state:

* every stateful simulator component exposes ``state_dict()`` /
  ``load_state_dict()`` hooks returning a plain-value tree (ints, floats,
  strings, bytes, lists, dicts) that restores the component bit-exactly;
* :func:`state_digest` hashes such a tree into an order-stable digest —
  two simulations are in the same architectural state if and only if
  their digests match;
* :mod:`repro.snapshot.store` persists full simulator state atomically
  (write-temp + ``os.replace``), versioned and fingerprint-checked;
* :class:`SnapshotPolicy` switches periodic snapshotting on process-wide
  (the experiments CLI's ``--snapshot-every`` / ``--resume-from``) and
  carries the wall-clock watchdog that converts deadline expiry into
  "snapshot then exit" (:class:`WatchdogExpired`) instead of lost work;
* :mod:`repro.snapshot.divergence` replays runs from snapshots and
  narrows the first interval where two digest streams differ.

Everything is free when off: a simulation with no active policy performs
one ``None`` check per run, not per µop.
"""

from repro.snapshot.digest import canonical_bytes, state_digest
from repro.snapshot.divergence import (
    DivergencePoint,
    compare_digest_streams,
    find_divergence,
)
from repro.snapshot.policy import (
    SnapshotPolicy,
    WatchdogExpired,
    active_policy,
    set_policy,
)
from repro.snapshot.store import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "DivergencePoint",
    "SnapshotError",
    "SnapshotPolicy",
    "WatchdogExpired",
    "active_policy",
    "canonical_bytes",
    "compare_digest_streams",
    "find_divergence",
    "load_snapshot",
    "save_snapshot",
    "set_policy",
    "state_digest",
]
