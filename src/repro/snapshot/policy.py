"""Process-wide snapshot policy and the wall-clock watchdog.

Mirrors the switch pattern of :func:`repro.core.invariants.set_global_checks`
and :func:`repro.perf.set_enabled`: a module-level policy object that
:meth:`repro.core.simulator.TimingSimulator.run` consults with a single
``None`` check, so snapshotting costs nothing when off.

The watchdog turns a wall-clock budget (a batch scheduler's time limit,
a CI timeout) into preserved work: when the deadline passes, the *next*
snapshot boundary saves state as usual and then raises
:class:`WatchdogExpired`, which the experiments CLI converts into exit
code 4 — "state saved, resume me" — instead of a SIGKILL that loses every
simulated cycle since the run began.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = [
    "SnapshotPolicy",
    "WatchdogExpired",
    "active_policy",
    "set_policy",
]


class WatchdogExpired(Exception):
    """The wall-clock deadline passed; state was snapshotted first.

    ``path`` is the snapshot file the run saved before raising, ``uop``
    the µop position it covers.
    """

    def __init__(self, path: str, uop: int) -> None:
        super().__init__(
            "wall-clock deadline expired; state snapshotted to %s "
            "at uop %d (resume with --resume-from)" % (path, uop)
        )
        self.path = path
        self.uop = uop


@dataclass
class SnapshotPolicy:
    """Periodic-snapshot configuration for timing runs.

    Parameters
    ----------
    every:
        µops between snapshot boundaries (must be positive).  At each
        boundary the run records a state digest into its result and, if
        *directory* is set, saves a full snapshot file.
    directory:
        Where snapshot files live, one per run key (trace + config
        fingerprint).  ``None`` records digests only — useful for
        divergence hunting without disk traffic.
    resume:
        Look for an existing snapshot of each run in *directory* and
        resume from it instead of starting cold.
    deadline:
        Wall-clock budget in seconds, measured from policy creation.
        Once exceeded, the next snapshot boundary saves and raises
        :class:`WatchdogExpired`.
    interrupt:
        Optional zero-argument callable polled at every snapshot
        boundary alongside the deadline.  Returning ``True`` triggers
        the same save-then-:class:`WatchdogExpired` path — this is how
        the simulation service (:mod:`repro.service`) preempts a long
        sweep job cooperatively: the preempted run loses nothing and
        resumes from the snapshot it just saved.
    """

    every: int
    directory: str | None = None
    resume: bool = False
    deadline: float | None = None
    interrupt: object = None
    _started: float = field(default=0.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise ValueError("snapshot interval must be positive")
        if self.resume and self.directory is None:
            raise ValueError("resume requires a snapshot directory")
        if self.deadline is not None and self.directory is None:
            raise ValueError(
                "a watchdog deadline requires a snapshot directory "
                "(expiry saves state before exiting)"
            )
        if self.interrupt is not None:
            if not callable(self.interrupt):
                raise ValueError("interrupt must be callable (or None)")
            if self.directory is None:
                raise ValueError(
                    "an interrupt hook requires a snapshot directory "
                    "(preemption saves state before exiting)"
                )
        self._started = time.monotonic()

    def expired(self) -> bool:
        """Should the next boundary save state and stop this run?"""
        if self.interrupt is not None and self.interrupt():
            return True
        if self.deadline is None:
            return False
        return (time.monotonic() - self._started) >= self.deadline


_ACTIVE: SnapshotPolicy | None = None


def set_policy(policy: SnapshotPolicy | None) -> SnapshotPolicy | None:
    """Install the process-wide policy; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = policy
    return previous


def active_policy() -> SnapshotPolicy | None:
    return _ACTIVE
