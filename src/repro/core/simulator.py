"""Top-level timing simulator: wires a machine together and runs a trace."""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.core import invariants
from repro.core.cpu import OutOfOrderCore
from repro.core.memsys import TimingMemorySystem
from repro.core.results import TimingResult
from repro.faults import FaultInjector
from repro.memory.backing import BackingMemory
from repro.memory.pagetable import PageTable
from repro.params import MachineConfig
from repro.prefetch.adaptive import AdaptiveController
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.trace.ops import Trace

__all__ = ["TimingSimulator"]


class TimingSimulator:
    """One simulated machine (config + memory image) ready to run a trace.

    Parameters
    ----------
    config:
        The machine description.  ``config.content.enabled`` switches the
        content prefetcher, ``config.markov.enabled`` the Markov
        prefetcher; the stride prefetcher is part of every baseline.
    memory:
        The backing memory image the workload was built into.  The
        simulator never mutates it (stores are timing-only), so one image
        can be shared across the many configurations of a sweep.
    adaptive:
        If ``True``, attach the runtime heuristic-tuning controller
        (the paper's future-work extension).
    check_invariants:
        If ``True``, enable live event-monotonicity checks and run the
        full :mod:`repro.core.invariants` validation after :meth:`run`,
        raising :class:`~repro.core.invariants.SimulationIntegrityError`
        on any violation.  Also switched on process-wide by
        :func:`repro.core.invariants.set_global_checks` (the CLI's
        ``--check-invariants``).

    A fault injector (:mod:`repro.faults`) is attached automatically when
    ``config.faults.enabled`` is true.
    """

    def __init__(
        self,
        config: MachineConfig,
        memory: BackingMemory,
        page_table: PageTable | None = None,
        adaptive: bool = False,
        check_invariants: bool = False,
    ) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(config, memory, page_table)
        self.stride = StridePrefetcher(
            config.stride, config.line_size,
            address_bits=config.content.address_bits,
        )
        self.content = ContentPrefetcher(config.content, config.line_size)
        self.markov = (
            MarkovPrefetcher(
                config.markov, config.line_size,
                address_bits=config.content.address_bits,
            )
            if config.markov.enabled else None
        )
        self.result = TimingResult("run")
        controller = None
        if adaptive:
            controller = AdaptiveController(self.content)
        self.adaptive = controller
        self.faults = (
            FaultInjector(config.faults) if config.faults.enabled else None
        )
        self.memsys = TimingMemorySystem(
            config,
            self.hierarchy,
            self.stride,
            self.content,
            markov=self.markov,
            result=self.result,
            adaptive=controller,
            faults=self.faults,
        )
        self.check_invariants = check_invariants
        if check_invariants or invariants.checks_enabled():
            self.memsys.integrity_checks = True
        self.core = OutOfOrderCore(config.core, self.memsys)

    def run(self, trace: Trace, warmup_uops: int = 0) -> TimingResult:
        """Simulate *trace* and return the populated :class:`TimingResult`.

        With invariant checking enabled (per-instance or globally), the
        run is validated end to end and raises
        :class:`~repro.core.invariants.SimulationIntegrityError` rather
        than returning inconsistent numbers.
        """
        self.result.name = trace.name
        cycles = self.core.run(trace, warmup_uops=warmup_uops)
        self.memsys.finalize()
        self.result.cycles = cycles
        self.result.uops = trace.uop_count - warmup_uops
        self.result.instructions = trace.instruction_count
        self.result.loads = self.core.loads_executed
        if self.check_invariants or invariants.checks_enabled():
            invariants.assert_integrity(self)
        return self.result


def run_pair(
    config: MachineConfig,
    memory: BackingMemory,
    trace: Trace,
    warmup_uops: int = 0,
) -> tuple[TimingResult, TimingResult]:
    """Run *trace* with and without the content prefetcher.

    Returns ``(baseline_result, content_result)`` where the baseline is the
    stride-prefetcher-only machine the paper measures all speedups against.
    Each run gets a fresh page table (cold caches/TLB) over the shared,
    read-only memory image.
    """
    base_config = config.with_content(enabled=False)
    baseline = TimingSimulator(base_config, memory).run(trace, warmup_uops)
    enhanced = TimingSimulator(config, memory).run(trace, warmup_uops)
    return baseline, enhanced
