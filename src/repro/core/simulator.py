"""Top-level timing simulator: wires a machine together and runs a trace."""

from __future__ import annotations

import os

from repro.cache.hierarchy import CacheHierarchy
from repro.configio import machine_config_to_dict
from repro.core import invariants
from repro.core.cpu import OutOfOrderCore, snapshot_boundaries
from repro.core.memsys import TimingMemorySystem
from repro.core.results import TimingResult
from repro.faults import FaultInjector
from repro.memory.backing import BackingMemory
from repro.memory.pagetable import PageTable
from repro.params import MachineConfig
from repro.prefetch.adaptive import AdaptiveController
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.snapshot.digest import state_digest
from repro.snapshot.policy import WatchdogExpired, active_policy
from repro.snapshot.store import load_snapshot, save_snapshot
from repro.trace.ops import Trace

__all__ = ["TimingSimulator"]


class TimingSimulator:
    """One simulated machine (config + memory image) ready to run a trace.

    Parameters
    ----------
    config:
        The machine description.  ``config.content.enabled`` switches the
        content prefetcher, ``config.markov.enabled`` the Markov
        prefetcher; the stride prefetcher is part of every baseline.
    memory:
        The backing memory image the workload was built into.  The
        simulator never mutates it (stores are timing-only), so one image
        can be shared across the many configurations of a sweep.
    adaptive:
        If ``True``, attach the runtime heuristic-tuning controller
        (the paper's future-work extension).
    check_invariants:
        If ``True``, enable live event-monotonicity checks and run the
        full :mod:`repro.core.invariants` validation after :meth:`run`,
        raising :class:`~repro.core.invariants.SimulationIntegrityError`
        on any violation.  Also switched on process-wide by
        :func:`repro.core.invariants.set_global_checks` (the CLI's
        ``--check-invariants``).

    A fault injector (:mod:`repro.faults`) is attached automatically when
    ``config.faults.enabled`` is true.

    When a :class:`~repro.snapshot.SnapshotPolicy` is installed
    (:func:`repro.snapshot.set_policy`), :meth:`run` records a state
    digest at every policy interval into ``result.state_digests``,
    persists full snapshots when the policy names a directory, resumes
    from an existing snapshot when asked to, and honours the wall-clock
    watchdog.  With no policy installed the cost is a single ``None``
    check per run.
    """

    def __init__(
        self,
        config: MachineConfig,
        memory: BackingMemory,
        page_table: PageTable | None = None,
        adaptive: bool = False,
        check_invariants: bool = False,
    ) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy(config, memory, page_table)
        self.stride = StridePrefetcher(
            config.stride, config.line_size,
            address_bits=config.content.address_bits,
        )
        self.content = ContentPrefetcher(config.content, config.line_size)
        self.markov = (
            MarkovPrefetcher(
                config.markov, config.line_size,
                address_bits=config.content.address_bits,
            )
            if config.markov.enabled else None
        )
        self.result = TimingResult("run")
        controller = None
        if adaptive:
            controller = AdaptiveController(self.content)
        self.adaptive = controller
        self.faults = (
            FaultInjector(config.faults) if config.faults.enabled else None
        )
        self.memsys = TimingMemorySystem(
            config,
            self.hierarchy,
            self.stride,
            self.content,
            markov=self.markov,
            result=self.result,
            adaptive=controller,
            faults=self.faults,
        )
        self.check_invariants = check_invariants
        if check_invariants or invariants.checks_enabled():
            self.memsys.integrity_checks = True
        self.core = OutOfOrderCore(config.core, self.memsys)

    def run(
        self, trace: Trace, warmup_uops: int = 0, policy=None
    ) -> TimingResult:
        """Simulate *trace* and return the populated :class:`TimingResult`.

        With invariant checking enabled (per-instance or globally), the
        run is validated end to end and raises
        :class:`~repro.core.invariants.SimulationIntegrityError` rather
        than returning inconsistent numbers.

        *policy* overrides the process-wide snapshot policy for this run
        only — the simulation service uses this so concurrent in-process
        worker jobs each snapshot (and preempt) independently.
        """
        if policy is None:
            policy = active_policy()
        if policy is not None:
            return self._run_with_snapshots(trace, warmup_uops, policy)
        self.result.name = trace.name
        cycles = self.core.run(trace, warmup_uops=warmup_uops)
        return self._finalize(trace, warmup_uops, cycles)

    def _finalize(
        self, trace: Trace, warmup_uops: int, cycles: float
    ) -> TimingResult:
        self.memsys.finalize()
        self.result.cycles = cycles
        self.result.uops = trace.uop_count - warmup_uops
        self.result.instructions = trace.instruction_count
        self.result.loads = self.core.loads_executed
        if self.check_invariants or invariants.checks_enabled():
            invariants.assert_integrity(self)
        return self.result

    # -- snapshot / resume ----------------------------------------------------

    def _run_with_snapshots(
        self, trace: Trace, warmup_uops: int, policy
    ) -> TimingResult:
        self.result.name = trace.name
        fingerprint = self.run_fingerprint(trace, warmup_uops)
        path = None
        if policy.directory is not None:
            path = self.snapshot_path(policy.directory, trace, warmup_uops)
            if policy.resume and os.path.exists(path):
                payload = load_snapshot(path, expected_fingerprint=fingerprint)
                self.load_state_dict(payload["state"])
                self.result.state_digests = [
                    list(entry)
                    for entry in payload["meta"].get("digests", [])
                ]
        boundaries = snapshot_boundaries(trace.ops, policy.every)

        def on_boundary(uop_pos: int) -> bool:
            state = self.state_dict()
            if path is not None:
                digest = state_digest(state)
                self.result.state_digests.append([uop_pos, digest])
                save_snapshot(
                    path, state, fingerprint,
                    meta={
                        "uop": uop_pos,
                        "trace": trace.name,
                        "warmup_uops": warmup_uops,
                        "digests": [
                            list(entry)
                            for entry in self.result.state_digests
                        ],
                    },
                )
                if policy.expired():
                    raise WatchdogExpired(path, uop_pos)
            else:
                self.result.state_digests.append(
                    [uop_pos, state_digest(state)]
                )
            return True

        cycles = self.core.run(
            trace, warmup_uops=warmup_uops,
            boundaries=boundaries, on_boundary=on_boundary,
        )
        return self._finalize(trace, warmup_uops, cycles)

    def run_fingerprint(self, trace: Trace, warmup_uops: int) -> dict:
        """Identity of one (machine, trace, warm-up) run.

        Resume refuses a snapshot whose fingerprint differs: continuing a
        run under a different config or trace would produce numbers that
        belong to neither.
        """
        ops = trace.ops
        step = max(1, len(ops) // 256)
        sample = [list(op) for op in ops[::step]]
        return {
            "config": state_digest(machine_config_to_dict(self.config)),
            "trace": {
                "name": trace.name,
                "uop_count": trace.uop_count,
                "op_count": len(ops),
                "ops_digest": state_digest(sample),
            },
            "warmup_uops": warmup_uops,
            "adaptive": self.adaptive is not None,
        }

    def snapshot_path(
        self, directory: str, trace: Trace, warmup_uops: int
    ) -> str:
        """The rolling snapshot file for this run, keyed by fingerprint."""
        key = state_digest(self.run_fingerprint(trace, warmup_uops))[:16]
        return os.path.join(directory, "%s-%s.snap" % (trace.name, key))

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """The full architectural state of the machine, as a plain tree.

        Composes every component's hook; restoring this tree into a
        freshly-constructed simulator of the same config reproduces the
        remainder of the run bit-identically (the backing memory is
        rebuilt from the workload, not serialized — see
        :meth:`CacheHierarchy.state_dict`).
        """
        return {
            "hierarchy": self.hierarchy.state_dict(),
            "memsys": self.memsys.state_dict(),
            "core": self.core.state_dict(),
            "stride": self.stride.state_dict(),
            "content": self.content.state_dict(),
            "markov": (
                self.markov.state_dict() if self.markov is not None else None
            ),
            "adaptive": (
                self.adaptive.state_dict()
                if self.adaptive is not None else None
            ),
            "faults": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "result": self.result.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        for name, component in (
            ("markov", self.markov),
            ("adaptive", self.adaptive),
            ("faults", self.faults),
        ):
            if (state[name] is None) != (component is None):
                raise ValueError(
                    "snapshot %s presence does not match this machine's "
                    "configuration" % name
                )
        self.hierarchy.load_state_dict(state["hierarchy"])
        self.memsys.load_state_dict(state["memsys"])
        self.core.load_state_dict(state["core"])
        self.stride.load_state_dict(state["stride"])
        self.content.load_state_dict(state["content"])
        if self.markov is not None:
            self.markov.load_state_dict(state["markov"])
        if self.adaptive is not None:
            self.adaptive.load_state_dict(state["adaptive"])
        if self.faults is not None:
            self.faults.load_state_dict(state["faults"])
        self.result.load_state_dict(state["result"])

    def state_digest(self) -> str:
        """Order-stable digest of :meth:`state_dict`."""
        return state_digest(self.state_dict())


def run_pair(
    config: MachineConfig,
    memory: BackingMemory,
    trace: Trace,
    warmup_uops: int = 0,
) -> tuple[TimingResult, TimingResult]:
    """Run *trace* with and without the content prefetcher.

    Returns ``(baseline_result, content_result)`` where the baseline is the
    stride-prefetcher-only machine the paper measures all speedups against.
    Each run gets a fresh page table (cold caches/TLB) over the shared,
    read-only memory image.
    """
    base_config = config.with_content(enabled=False)
    baseline = TimingSimulator(base_config, memory).run(trace, warmup_uops)
    enhanced = TimingSimulator(config, memory).run(trace, warmup_uops)
    return baseline, enhanced
