"""Event-driven timing model of the memory system of Figure 6.

The core (see :mod:`repro.core.cpu`) calls :meth:`TimingMemorySystem.load`
and :meth:`~TimingMemorySystem.store` with the cycle at which each access
executes; the memory system returns the access latency and, internally,
advances an event queue that models:

* the L1 (virtually indexed) and UL2 (physically indexed) caches;
* the DTLB and hardware page walker (walk fills bypass the scanner);
* the stride prefetcher observing L1 miss traffic;
* the content prefetcher scanning a copy of all UL2 fill traffic and
  issuing chained/width prefetches, with per-line depth bits, promotion,
  and reinforcement rescans through the L2 port;
* the optional Markov prefetcher observing UL2 demand misses;
* a priority bus arbiter (demand > stride > content/markov; shallower
  depth first) with squash-on-full and displace-for-demand semantics;
* a serially-occupied front-side bus with a fixed fill latency.

Timing approximations (documented in DESIGN.md): demand requests claim the
bus at request time (which realises their top arbiter priority), and cache
state queries slightly in the past are answered with present state — the
event queue only moves forward.
"""

from __future__ import annotations

import heapq

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import Requester
from repro.cache.mshr import MissStatus, MSHRFile
from repro.cache.prefetchbuffer import PrefetchBuffer
from repro.core.results import PrefetchAccounting, TimingResult
from repro.interconnect.arbiter import MemoryRequest, PriorityArbiter
from repro.interconnect.bus import Bus, L2Port
from repro.memory.address import line_mask
from repro.params import BusConfig, MachineConfig
from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.content import ContentPrefetcher
from repro.snapshot.hooks import canonical_heap
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = ["TimingMemorySystem"]

_EV_FILL = 0
_EV_BUS = 1

# A fill_time of -1 marks an in-flight entry still queued at the bus
# arbiter (not yet granted).
_NOT_GRANTED = -1


class TimingMemorySystem:
    """The full memory side of the machine."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: CacheHierarchy,
        stride: StridePrefetcher,
        content: ContentPrefetcher,
        markov: MarkovPrefetcher | None = None,
        result: TimingResult | None = None,
        adaptive=None,
        faults=None,
    ) -> None:
        self.config = config
        self.hier = hierarchy
        self.stride = stride
        self.content = content
        self.markov = markov
        self.adaptive = adaptive
        self.result = result if result is not None else TimingResult("mem")
        # Hot-path aliases: the hierarchy's components never change after
        # construction, and the per-requester accounting map is fixed, so
        # resolve both once instead of per access.
        self._l1 = hierarchy.l1
        self._l2 = hierarchy.l2
        self._dtlb = hierarchy.dtlb
        self._l1_latency = hierarchy.l1.config.latency
        self._l2_latency = hierarchy.l2.config.latency
        self._accts = (
            None, self.result.stride, self.result.content, self.result.markov,
        )
        # Static content-policy knobs consulted on every prefetch issue.
        self._content_offchip = config.content.placement == "offchip"
        self._reinforcement = config.content.reinforcement
        self.bus = Bus(config.bus, line_size=config.line_size)
        self.l2_port = L2Port(config.bus.l2_throughput)
        self.bus_arbiter = PriorityArbiter(
            config.bus.bus_queue_size, name="bus"
        )
        self.mshr = MSHRFile()
        # Optional dedicated prefetch buffer (fill_target="buffer").
        self.prefetch_buffer = (
            PrefetchBuffer(config.content.buffer_entries)
            if config.content.fill_target == "buffer" else None
        )
        self.now = 0
        self._events: list = []
        # Explicit event tie-break counter (not itertools.count) so
        # snapshots capture and restore the exact posting sequence.
        self._seq = 0
        # Event-drain implementation (see set_drain_mode); the bound
        # method is cached as an instance attribute because _advance is
        # called once per demand access.
        self.drain_mode = "batched"
        self._advance = self._advance_batched
        self._bus_service_pending = False
        self._line_mask = line_mask(
            config.line_size, config.content.address_bits
        )
        # Recycled MemoryRequest objects: prefetch issue is the hottest
        # allocation site in the event loop, and a request's life ends the
        # moment the bus grants it — so granted requests go back to this
        # free list instead of the garbage collector.
        self._request_pool: list = []
        # L2-queue backlog limit: rescans are dropped once the port backlog
        # (in accesses) exceeds the 128-entry L2 queue.
        self._l2_queue_limit = (
            config.bus.l2_queue_size * config.bus.l2_throughput
        )
        self.dropped_rescans = 0
        # Section 3.5 limit study: when enabled, bad prefetches are
        # injected whenever the bus is idle, forcing UL2 evictions.
        self.inject_pollution = False
        self.pollution_fills = 0
        self._pollution_cursor = 0xE000_0000
        # Injection is paced at Table 1's bus occupancy (one line per ~60
        # cycles): the paper injected on idle cycles of *that* bus; the
        # model machine's scaled-up bandwidth must not multiply the
        # injection rate.
        self._pollution_interval = max(
            self.bus.occupancy, BusConfig().line_occupancy(config.line_size)
        )
        self._last_pollution = -10**9
        # Optional observer (see repro.analysis): receives prefetch
        # lifecycle callbacks.  Kept None in normal runs.
        self.observer = None
        # Optional fault injector (see repro.faults): perturbs bus grants,
        # DTLB state, scanned line bytes, MSHR availability, and resident
        # prefetched lines.  None in normal runs.
        self.faults = None
        if faults is not None:
            faults.attach(self)
        # Live invariant checking (see repro.core.invariants): when on,
        # monotonicity violations are recorded here and surfaced by the
        # post-run checker.
        self.integrity_checks = False
        self.integrity_log: list = []

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------

    def _post(self, time: int, kind: int, payload) -> None:
        if self.integrity_checks and time < self.now:
            self.integrity_log.append(
                "event posted in the past: t=%d with now=%d (kind=%d)"
                % (time, self.now, kind)
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._events, (time, seq, kind, payload))

    def _grant_bus(self, time: int) -> tuple:
        """Grant a bus transfer, applying any injected grant fault."""
        grant, fill = self.bus.grant(time)
        if self.faults is not None:
            fill += self.faults.bus_grant_penalty()
        return grant, fill

    def _advance_batched(self, time: int) -> None:
        """Batched event drain: dispatch same-timestamp runs in one pass.

        Pops the entire run of events sharing the head timestamp before
        dispatching any of them, then processes the run in (seq) order —
        the precomputed grant order for that cycle.  This reproduces the
        reference (one-pop-at-a-time) order exactly: events posted during
        processing always carry a seq greater than every already-pending
        event, so within a timestamp the pending run drains first in both
        schemes, and the outer loop re-checks the heap for runs the batch
        itself scheduled.  Equivalence is property-tested digest-for-digest
        against :meth:`_advance_reference` (tests/test_drain_equivalence).
        """
        events = self._events
        pop = heapq.heappop
        complete_fill = self._complete_fill
        service_bus = self._service_bus
        while events and events[0][0] <= time:
            batch_time = events[0][0]
            batch = [pop(events)]
            while events and events[0][0] == batch_time:
                batch.append(pop(events))
            if batch_time > self.now:
                self.now = batch_time
            for event in batch:
                if event[2] == _EV_FILL:
                    complete_fill(event[3], batch_time)
                else:
                    service_bus(batch_time)
        if time > self.now:
            self.now = time

    def _advance_reference(self, time: int) -> None:
        """The original one-event-per-heap-pass drain, kept as the oracle
        for the batched implementation (and selectable via
        :meth:`set_drain_mode` for divergence hunts)."""
        events = self._events
        while events and events[0][0] <= time:
            ev_time, _, kind, payload = heapq.heappop(events)
            if ev_time > self.now:
                self.now = ev_time
            if kind == _EV_FILL:
                self._complete_fill(payload, ev_time)
            else:
                self._service_bus(ev_time)
        if time > self.now:
            self.now = time

    def set_drain_mode(self, mode: str) -> None:
        """Select the event-drain implementation.

        ``"batched"`` (the default) and ``"reference"`` are
        digest-identical; the mode is an implementation choice, not
        architectural state, so it is deliberately absent from
        :meth:`state_dict` — a snapshot taken under either drain resumes
        under either.
        """
        if mode not in ("batched", "reference"):
            raise ValueError("unknown drain mode: %r" % mode)
        self.drain_mode = mode
        self._advance = (
            self._advance_batched if mode == "batched"
            else self._advance_reference
        )

    def advance_to(self, time: int) -> None:
        """Process all memory-system events up to *time*."""
        self._advance(time)

    def drain(self) -> int:
        """Run all outstanding events; returns the final event time."""
        while self._events:
            self._advance(self._events[0][0])
        return self.now

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def load(self, vaddr: int, pc: int, time: int) -> int:
        """Execute a demand load at cycle *time*; returns its latency."""
        return self._demand_access(vaddr, pc, time, is_load=True)

    def store(self, vaddr: int, pc: int, time: int) -> int:
        """Execute a demand store (write-allocate); returns fill latency."""
        return self._demand_access(vaddr, pc, time, is_load=False)

    def _demand_access(
        self, vaddr: int, pc: int, time: int, is_load: bool
    ) -> int:
        # Inline the no-pending-events fast path of _advance: most demand
        # accesses find nothing due, and both drain implementations reduce
        # to exactly this clock bump in that case.
        events = self._events
        if events and events[0][0] <= time:
            self._advance(time)
        elif time > self.now:
            self.now = time
        if self.inject_pollution:
            self._maybe_inject_pollution(time)
        l1 = self._l1
        if l1.lookup(vaddr) is not None:
            if not is_load:
                # Stores that hit the L1 dirty the L2 copy too (the model
                # has no separate L1 writeback path).
                paddr = self._dtlb.peek(vaddr)
                if paddr is not None:
                    resident = self._l2.peek(paddr & self._line_mask)
                    if resident is not None:
                        resident.dirty = True
            return l1.config.latency
        result = self.result
        result.demand_l1_misses += 1
        # The stride prefetcher monitors all L1 miss traffic (Figure 6).
        stride_candidates = self.stride.observe(pc, vaddr)
        # Translation: the L2 is physically indexed.
        walk_latency = 0
        if self.faults is not None:
            self.faults.pre_translation(self._dtlb, vaddr)
        paddr = self._dtlb.translate(vaddr)
        if paddr is None:
            result.demand_page_walks += 1
            walk_latency, paddr = self._page_walk(vaddr, time, prefetch=False)
        for candidate in stride_candidates:
            self._issue_prefetch(candidate, Requester.STRIDE, time)
        t_l2 = time + walk_latency
        result.demand_l2_requests += 1
        line_p = paddr & self._line_mask
        line_v = vaddr & self._line_mask
        slot = self.l2_port.reserve(t_l2)
        line = self._l2.lookup(paddr)
        if line is not None:
            return self._demand_l2_hit(
                line, line_p, vaddr, time, slot, is_load
            )
        if self.prefetch_buffer is not None:
            buffered = self.prefetch_buffer.promote(line_p)
            if buffered is not None:
                return self._demand_buffer_hit(
                    buffered, line_p, vaddr, time, slot, is_load
                )
        status = self.mshr.lookup(line_p)
        if status is not None:
            return self._demand_mshr_hit(status, time, slot, is_load)
        return self._demand_l2_miss(
            line_p, line_v, vaddr, pc, time, slot,
            bool(stride_candidates), is_load,
        )

    def _demand_l2_hit(
        self, line, line_p: int, vaddr: int, time: int, slot: int,
        is_load: bool,
    ) -> int:
        latency = (slot - time) + self._l1_latency + self._l2_latency
        if (
            is_load
            and line.requester is not Requester.DEMAND
            and not line.referenced
        ):
            # A demand access found a prefetched line resident: the
            # prefetch fully masked the would-be miss.
            acct = self._accounting(line.requester)
            if acct is not None:
                acct.full_hits += 1
                if line.kind:
                    acct.record_useful_kind(line.kind)
                if self.observer is not None:
                    self.observer.on_prefetch_hit(line_p, time, full=True)
                if self.adaptive is not None and line.requester is Requester.CONTENT:
                    self.adaptive.record_outcome(True)
        rescan = self.content.should_rescan(line.depth, 0)
        line.promote(0, Requester.DEMAND)
        if not is_load:
            line.dirty = True
        if rescan:
            self._rescan(line.vaddr, line_p, vaddr, depth=0, time=slot)
        self._l1.fill(vaddr, vaddr=vaddr & self._line_mask)
        return latency

    def _demand_buffer_hit(
        self, buffered, line_p: int, vaddr: int, time: int, slot: int,
        is_load: bool,
    ) -> int:
        """Demand hit in the prefetch buffer: move the line into the UL2.

        Costs one extra port slot for the transfer; otherwise L2-hit
        latency — the buffer sits beside the cache.
        """
        transfer_slot = self.l2_port.reserve(slot)
        latency = (
            (transfer_slot - time) + self._l1_latency
            + self._l2_latency
        )
        if is_load:
            acct = self._accounting(buffered.requester)
            if acct is not None:
                acct.full_hits += 1
                if buffered.kind:
                    acct.record_useful_kind(buffered.kind)
                if self.observer is not None:
                    self.observer.on_prefetch_hit(
                        line_p, transfer_slot, full=True
                    )
        victim = self._l2.fill(
            line_p, vaddr=buffered.vaddr, requester=buffered.requester,
            depth=buffered.depth, time=transfer_slot, kind=buffered.kind,
        )
        resident = self._l2.peek(line_p)
        if resident is not None:
            rescan = self.content.should_rescan(resident.depth, 0)
            resident.promote(0, Requester.DEMAND)
            if not is_load:
                resident.dirty = True
            if rescan:
                self._rescan(
                    resident.vaddr, line_p, vaddr, depth=0,
                    time=transfer_slot,
                )
        self._write_back(victim, transfer_slot)
        self._l1.fill(vaddr, vaddr=vaddr & self._line_mask)
        return latency

    def _demand_mshr_hit(
        self, status: MissStatus, time: int, slot: int, is_load: bool
    ) -> int:
        first_match = status.demand_waiters == 0
        was_prefetch = status.requester is not Requester.DEMAND
        if was_prefetch:
            # The in-flight prefetch is promoted to demand priority; the
            # depth reset (which keeps the chain alive when the fill is
            # scanned) is part of the path-reinforcement mechanism of
            # Figure 3 and is gated accordingly.
            status.demand_waiters += 1
            if not status.promoted:
                status.promoted = True
                if self._reinforcement:
                    status.depth = 0
        else:
            status.demand_waiters += 1
        if status.fill_time == _NOT_GRANTED:
            # Still queued at the bus arbiter: the demand claims the bus
            # itself (top priority); the queued prefetch earned nothing.
            grant, fill = self._grant_bus(slot)
            status.fill_time = fill
            self._post(fill, _EV_FILL, status)
            if is_load and first_match:
                self.result.unmasked_l2_misses += 1
            return (fill - time) + self._l1_latency
        # Granted and in flight: wait for the scheduled fill — a partially
        # masked miss if the original request was a prefetch.
        wait = max(0, status.fill_time - slot)
        if is_load and first_match and was_prefetch:
            acct = self._accounting(status.requester)
            if acct is not None:
                acct.partial_hits += 1
                kind = status.extra.get("kind", "")
                if kind:
                    acct.record_useful_kind(kind)
                if self.observer is not None:
                    self.observer.on_prefetch_hit(
                        status.line_paddr, slot, full=False
                    )
                if self.adaptive is not None and status.requester is Requester.CONTENT:
                    self.adaptive.record_outcome(True)
        return (slot - time) + self._l1_latency + wait

    def _demand_l2_miss(
        self, line_p: int, line_v: int, vaddr: int, pc: int,
        time: int, slot: int, stride_covered: bool, is_load: bool,
    ) -> int:
        if is_load:
            self.result.unmasked_l2_misses += 1
        grant, fill = self._grant_bus(slot)
        status = MissStatus(
            line_p, line_v, Requester.DEMAND, depth=0,
            issue_time=slot, fill_time=fill,
        )
        status.extra["eff_vaddr"] = vaddr
        status.extra["fill_l1"] = True
        if not is_load:
            status.extra["dirty"] = True
        self.mshr.allocate(status)
        self._post(fill, _EV_FILL, status)
        if self.markov is not None:
            for candidate in self.markov.observe_miss(vaddr, stride_covered):
                self._issue_prefetch(candidate, Requester.MARKOV, time)
        return (fill - time) + self._l1_latency

    def _maybe_inject_pollution(self, time: int) -> None:
        """Inject a bad prefetch on an idle bus (the Section 3.5 study)."""
        if self.bus.busy_at(time):
            return
        if time - self._last_pollution < self._pollution_interval:
            return
        self._last_pollution = time
        line = self._pollution_cursor
        self._pollution_cursor += self.config.line_size
        if self._pollution_cursor >= 0xE000_0000 + (8 << 20):
            self._pollution_cursor = 0xE000_0000
        if line in self.mshr:
            return
        _, fill = self.bus.grant(time)
        status = MissStatus(
            line, line, Requester.CONTENT,
            depth=self.config.content.depth_threshold,
            issue_time=time, fill_time=fill,
        )
        status.extra["pollution"] = True
        self.mshr.allocate(status)
        self._post(fill, _EV_FILL, status)
        self.pollution_fills += 1

    # ------------------------------------------------------------------
    # page walking
    # ------------------------------------------------------------------

    def _page_walk(
        self, vaddr: int, time: int, prefetch: bool
    ) -> tuple[int, int]:
        """Walk the page table; returns ``(latency, paddr)``.

        Walk fills go through the L2/bus for timing but bypass the content
        prefetcher's scanner (Section 3.5).
        """
        table = self.hier.page_table
        paddr = table.translate(vaddr)
        latency = 0
        for walk_addr in table.walk_addresses(vaddr):
            walk_line = walk_addr & self._line_mask
            slot = self.l2_port.reserve(time + latency)
            if self.hier.l2.peek(walk_line) is not None:
                latency = (slot - time) + self.hier.l2.config.latency
            elif prefetch:
                # Speculative walks yield to demand traffic: the PT read
                # pays the full memory latency but does not claim a bus
                # slot ahead of demand fills (it drains in arbiter slack).
                latency = (slot - time) + self.bus.latency
                self.hier.l2.fill(
                    walk_line, vaddr=walk_line, time=slot + self.bus.latency
                )
            else:
                grant, fill = self._grant_bus(slot)
                latency = fill - time
                self.hier.l2.fill(walk_line, vaddr=walk_line, time=fill)
        self.hier.dtlb.insert(vaddr, paddr, prefetch=prefetch)
        if prefetch:
            self.result.prefetch_page_walks += 1
        return latency, paddr

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------

    def _accounting(self, requester: Requester) -> PrefetchAccounting | None:
        # Requester values are 0..3 in arbiter priority order; index the
        # fixed tuple built at construction (DEMAND maps to None).
        return self._accts[requester]

    def _issue_prefetch(
        self, candidate: PrefetchCandidate, requester: Requester, time: int
    ) -> None:
        acct = self._accts[requester]
        # Translate the candidate virtual address.
        paddr = self._dtlb.peek(candidate.vaddr)
        if paddr is None:
            if requester is Requester.CONTENT and self._content_offchip:
                # Off-chip placement has no DTLB access (Section 3.2).
                acct.dropped_untranslated += 1
                return
            if not self.hier.page_table.is_mapped(candidate.vaddr):
                # The walk would find no valid PTE: a junk candidate into
                # unmapped space.  Hardware drops the prefetch (demand
                # accesses fault pages in; speculative ones cannot).
                acct.dropped_unmapped += 1
                return
            self.result.prefetch_walk_required += 1
            walk_latency, paddr = self._page_walk(
                candidate.vaddr, time, prefetch=True
            )
            time += walk_latency
        line_p = paddr & self._line_mask
        line_v = candidate.vaddr & self._line_mask
        if (
            self.prefetch_buffer is not None
            and line_p in self.prefetch_buffer
        ):
            acct.dropped_resident += 1
            return
        # Already resident: drop, but a lower-depth touch reinforces.
        resident = self._l2.peek(line_p)
        if resident is not None:
            if self.content.should_rescan(resident.depth, candidate.depth):
                resident.promote(candidate.depth, requester)
                self._rescan(
                    resident.vaddr, line_p, candidate.vaddr,
                    depth=candidate.depth, time=time,
                )
            acct.dropped_resident += 1
            return
        # Matching transaction in flight: drop (and, with reinforcement,
        # reset its depth — Figure 3's "prefetch mem transaction found
        # in-flight" case).
        status = self.mshr.lookup(line_p)
        if status is not None:
            if self._reinforcement and candidate.depth < status.depth:
                status.depth = candidate.depth
            acct.dropped_inflight += 1
            return
        # MSHR exhaustion (a real capacity bound, or an injected burst):
        # the prefetch finds no free entry and is squashed.  Demand misses
        # are never refused — see MSHRFile.
        if self.mshr.full or (
            self.faults is not None and self.faults.mshr_exhausted(time)
        ):
            acct.squashed_mshr_full += 1
            return
        if self._request_pool:
            request = self._request_pool.pop()
            request.line_paddr = line_p
            request.line_vaddr = line_v
            request.requester = requester
            request.depth = candidate.depth
            request.create_time = time
            request.pc = 0
            request.scannable = True
        else:
            request = MemoryRequest(
                line_p, line_v, requester, candidate.depth, create_time=time
            )
        if not self.bus_arbiter.enqueue(request):
            self._request_pool.append(request)
            acct.squashed_queue_full += 1
            return
        acct.issued += 1
        acct.record_issue_kind(candidate.kind.value)
        if self.observer is not None:
            self.observer.on_prefetch_issue(
                line_p, requester, candidate.depth, candidate.kind.value,
                time,
            )
        status = MissStatus(
            line_p, line_v, requester, candidate.depth,
            issue_time=time, fill_time=_NOT_GRANTED,
        )
        status.extra["eff_vaddr"] = candidate.trigger_vaddr or candidate.vaddr
        status.extra["kind"] = candidate.kind.value
        self.mshr.allocate(status)
        self._schedule_bus_service(time)

    def _schedule_bus_service(self, time: int) -> None:
        if self._bus_service_pending:
            return
        self._bus_service_pending = True
        self._post(max(time, self.bus.next_free), _EV_BUS, None)

    def _service_bus(self, time: int) -> None:
        self._bus_service_pending = False
        if self.bus.busy_at(time):
            self._schedule_bus_service(self.bus.next_free)
            return
        pool = self._request_pool
        while True:
            request = self.bus_arbiter.pop()
            if request is None:
                return
            status = self.mshr.lookup(request.line_paddr)
            pool.append(request)
            if status is None or status.fill_time != _NOT_GRANTED:
                # Cancelled, or a demand already claimed this line's fill.
                continue
            break
        grant, fill = self._grant_bus(time)
        status.fill_time = fill
        self._post(fill, _EV_FILL, status)
        if len(self.bus_arbiter):
            self._schedule_bus_service(self.bus.next_free)

    # ------------------------------------------------------------------
    # fills and scans
    # ------------------------------------------------------------------

    def _complete_fill(self, status: MissStatus, time: int) -> None:
        self.mshr.complete(status.line_paddr)
        requester = status.requester
        depth = status.depth
        if status.promoted:
            # Promoted fills insert at demand priority; their scan depth is
            # status.depth, which the reinforcement gating may have reset.
            requester = Requester.DEMAND
        if (
            self.prefetch_buffer is not None
            and requester is not Requester.DEMAND
        ):
            self.prefetch_buffer.fill(
                status.line_paddr, status.line_vaddr, requester,
                self.content.clamp_depth(depth), time=time,
                kind=status.extra.get("kind", ""),
            )
            victim = None
        else:
            victim = self._l2.fill(
                status.line_paddr,
                vaddr=status.line_vaddr,
                requester=requester,
                depth=self.content.clamp_depth(depth),
                time=time,
                kind=status.extra.get("kind", ""),
            )
        if status.extra.get("dirty"):
            resident = self._l2.peek(status.line_paddr)
            if resident is not None:
                resident.dirty = True
        self._write_back(victim, time)
        if status.extra.get("pollution"):
            return
        acct = self._accounting(status.requester)
        if acct is not None:
            acct.completed += 1
            if self.observer is not None:
                self.observer.on_prefetch_fill(status.line_paddr, time)
            if self.faults is not None and not status.promoted:
                # Thrash strikes freshly-filled *prefetched* lines; a
                # promoted fill is demand data and is left alone.
                self.faults.maybe_thrash(self)
        if status.extra.get("fill_l1") or status.promoted:
            self._l1.fill(status.line_vaddr, vaddr=status.line_vaddr)
        # A copy of all UL2 fill traffic goes to the content prefetcher.
        effective = status.extra.get("eff_vaddr", status.line_vaddr)
        self._scan(status.line_vaddr, effective, depth, time, rescan=False)

    def _scan(
        self, line_vaddr: int, effective_vaddr: int, depth: int,
        time: int, rescan: bool,
    ) -> None:
        if not self.config.content.enabled:
            return
        slot = self.l2_port.reserve(time, is_rescan=rescan)
        line_bytes = self.hier.read_line_bytes(line_vaddr)
        if self.faults is not None:
            line_bytes = self.faults.maybe_corrupt_line(
                line_bytes, effective_vaddr, self.config.content
            )
        candidates = self.content.scan_fill(
            line_vaddr, line_bytes, effective_vaddr, depth, is_rescan=rescan
        )
        for candidate in candidates:
            self._issue_prefetch(candidate, Requester.CONTENT, slot)

    def _rescan(
        self, line_vaddr: int, line_paddr: int, effective_vaddr: int,
        depth: int, time: int,
    ) -> None:
        """Reinforcement rescan of a resident line (Section 3.4.2)."""
        backlog = self.l2_port.next_free - time
        if backlog > self._l2_queue_limit:
            # Rescans can flood the cache read ports; past the L2 queue
            # depth they are dropped rather than queued indefinitely.
            self.dropped_rescans += 1
            return
        self.result.rescans += 1
        self._scan(line_vaddr, effective_vaddr, depth, time, rescan=True)

    def _write_back(self, victim, time: int) -> None:
        """Write a dirty L2 victim back to memory (bus occupancy only)."""
        if victim is None or not victim.dirty:
            return
        self.bus.grant(time)
        self.result.writebacks += 1

    # ------------------------------------------------------------------
    # snapshot hooks
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Event queue, MSHRs, interconnect, and injection state.

        Shared components (hierarchy, prefetchers, fault injector, the
        result) are serialized by their owners — the simulator composes
        the full tree.  The event heap is captured in canonical (sorted)
        order: event keys ``(time, seq)`` are unique, so pop order is a
        pure function of the pending set and a sorted array is itself a
        valid heap (see :func:`repro.snapshot.hooks.canonical_heap`) —
        this is what makes the batched and reference drains, whose heap
        *layouts* differ, produce identical state digests and accept each
        other's snapshots.  Fill-event payloads are MissStatus objects shared
        with the MSHR file; they serialize as line-address references and
        are resolved against the restored MSHRs on load, preserving the
        identity sharing (a demand promotion after resume must mutate the
        same object the pending fill event carries).

        The request free list is deliberately excluded: pooled requests
        have every field overwritten before reuse, so pool contents never
        affect architectural state.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "bus_service_pending": self._bus_service_pending,
            "events": [
                [time, seq, kind,
                 payload.line_paddr if kind == _EV_FILL else None]
                for time, seq, kind, payload in canonical_heap(self._events)
            ],
            "mshr": self.mshr.state_dict(),
            "bus": self.bus.state_dict(),
            "l2_port": self.l2_port.state_dict(),
            "bus_arbiter": self.bus_arbiter.state_dict(),
            "prefetch_buffer": (
                self.prefetch_buffer.state_dict()
                if self.prefetch_buffer is not None else None
            ),
            "dropped_rescans": self.dropped_rescans,
            "inject_pollution": self.inject_pollution,
            "pollution_fills": self.pollution_fills,
            "pollution_cursor": self._pollution_cursor,
            "last_pollution": self._last_pollution,
            "integrity_log": list(self.integrity_log),
        }

    def load_state_dict(self, state: dict) -> None:
        self.now = state["now"]
        self._seq = state["seq"]
        self._bus_service_pending = state["bus_service_pending"]
        self.mshr.load_state_dict(state["mshr"])
        events = []
        for time, seq, kind, line_paddr in state["events"]:
            if kind == _EV_FILL:
                payload = self.mshr.lookup(line_paddr)
                if payload is None:
                    raise ValueError(
                        "snapshot has a fill event for line 0x%x with no "
                        "matching MSHR entry" % line_paddr
                    )
            else:
                payload = None
            events.append((time, seq, kind, payload))
        self._events = events
        self.bus.load_state_dict(state["bus"])
        self.l2_port.load_state_dict(state["l2_port"])
        self.bus_arbiter.load_state_dict(state["bus_arbiter"])
        buffer_state = state["prefetch_buffer"]
        if (buffer_state is None) != (self.prefetch_buffer is None):
            raise ValueError(
                "snapshot prefetch-buffer presence does not match this "
                "machine's fill_target configuration"
            )
        if self.prefetch_buffer is not None:
            self.prefetch_buffer.load_state_dict(buffer_state)
        self.dropped_rescans = state["dropped_rescans"]
        self.inject_pollution = state["inject_pollution"]
        self.pollution_fills = state["pollution_fills"]
        self._pollution_cursor = state["pollution_cursor"]
        self._last_pollution = state["last_pollution"]
        self.integrity_log = list(state["integrity_log"])

    # ------------------------------------------------------------------
    # end-of-run bookkeeping
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Drain events and fold component stats into the result."""
        self.drain()
        if self.faults is not None:
            self.result.fault_injections = self.faults.stats.as_dict()
        self.result.bus_transfers = self.bus.stats.transfers
        self.result.bus_queue_delay = self.bus.stats.total_queue_delay
        self.result.l2_pollution_evictions = (
            self.hier.l2.stats.polluting_evictions
        )
        for requester, acct in (
            (Requester.STRIDE, self.result.stride),
            (Requester.CONTENT, self.result.content),
            (Requester.MARKOV, self.result.markov),
        ):
            fills = self.hier.l2.stats.prefetch_fills_by.get(requester.name, 0)
            acct.evicted_unused = max(0, fills - acct.useful)
