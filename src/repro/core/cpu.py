"""Timestamp-based out-of-order core model.

This approximates the paper's P4-like machine (Table 1) at the fidelity a
trace-driven study needs: the binding constraints on pointer-intensive code
are (a) load→load dependences serialising pointer chases, (b) the ROB
bounding how far execution can run ahead of an outstanding miss, (c) issue
width bounding compute throughput, and (d) the mispredict penalty.  Each is
modelled directly:

* µops issue at ``issue_width`` per cycle; memory µops additionally at
  ``mem_units`` per cycle.
* A load executes at ``max(issue time, producer ready time)`` and completes
  after the memory-system latency; its completion is the ready time for
  dependent loads.
* Retirement is in-order: the running maximum of completion times.  A µop
  cannot issue until the µop ``reorder_buffer`` positions earlier has
  retired; loads/stores are additionally bounded by the load/store buffer.
* A mispredicted branch stalls the front end for ``mispredict_penalty``
  cycles after the branch completes.
"""

from __future__ import annotations

from collections import deque

from repro.core.memsys import TimingMemorySystem
from repro.params import CoreConfig
from repro.trace.ops import BRANCH, COMPUTE, LOAD, Trace

__all__ = ["OutOfOrderCore"]


class OutOfOrderCore:
    """Consumes a µop trace, driving the timing memory system."""

    def __init__(self, config: CoreConfig, memsys: TimingMemorySystem) -> None:
        self.config = config
        self.memsys = memsys
        self.cycles = 0.0
        self.loads_executed = 0
        self.stores_executed = 0

    def run(self, trace: Trace, warmup_uops: int = 0) -> float:
        """Simulate the trace; returns total cycles (post-warm-up).

        *warmup_uops*: statistics-gathering starts after this many µops
        have retired (Section 2.2's warm-up discipline); the returned cycle
        count covers only the measured region.
        """
        cfg = self.config
        issue_step = 1.0 / cfg.issue_width
        mem_step = 1.0 / cfg.mem_units
        issue_time = 0.0
        mem_issue_time = 0.0
        inorder_retire = 0.0
        uop_pos = 0
        # (uop position, in-order retire time at that µop) for long-latency
        # ops; enforces the ROB-occupancy issue constraint.
        rob_tail: deque = deque()
        load_buffer: deque = deque()
        store_buffer: deque = deque()
        ready: dict[int, float] = {}
        warmup_cycles = 0.0
        warmup_marked = warmup_uops == 0

        for index, op in enumerate(trace.ops):
            if not warmup_marked and uop_pos >= warmup_uops:
                warmup_cycles = max(issue_time, inorder_retire)
                warmup_marked = True
            kind = op[0]
            # ROB pressure: µops older than the window must have retired.
            window_floor = uop_pos - cfg.reorder_buffer
            while rob_tail and rob_tail[0][0] <= window_floor:
                _, retire = rob_tail.popleft()
                if retire > issue_time:
                    issue_time = retire
            if kind == COMPUTE:
                count = op[1]
                if not warmup_marked and uop_pos + count > warmup_uops:
                    # The warm-up boundary lands inside this compute run:
                    # interpolate the cycle at which it was crossed.
                    crossed = warmup_uops - uop_pos
                    warmup_cycles = max(
                        inorder_retire, issue_time + crossed * issue_step
                    )
                    warmup_marked = True
                issue_time += count * issue_step
                if issue_time > inorder_retire:
                    inorder_retire = issue_time
                uop_pos += count
                continue
            if kind == BRANCH:
                completion = issue_time + 1.0
                if completion > inorder_retire:
                    inorder_retire = completion
                if op[1]:
                    issue_time = completion + cfg.mispredict_penalty
                else:
                    issue_time += issue_step
                uop_pos += 1
                continue
            # Memory op: bounded by memory issue ports.
            if mem_issue_time > issue_time:
                issue_time = mem_issue_time
            if kind == LOAD:
                if len(load_buffer) >= cfg.load_buffer:
                    oldest = load_buffer.popleft()
                    if oldest > issue_time:
                        issue_time = oldest
                dep = op[3]
                exec_start = issue_time
                if dep >= 0:
                    dep_ready = ready.get(dep, 0.0)
                    if dep_ready > exec_start:
                        exec_start = dep_ready
                latency = self.memsys.load(op[1], op[2], int(exec_start))
                completion = exec_start + latency
                ready[index] = completion
                load_buffer.append(completion)
                self.loads_executed += 1
            else:  # STORE
                if len(store_buffer) >= cfg.store_buffer:
                    oldest = store_buffer.popleft()
                    if oldest > issue_time:
                        issue_time = oldest
                latency = self.memsys.store(op[1], op[2], int(issue_time))
                completion = issue_time + latency
                store_buffer.append(completion)
                self.stores_executed += 1
            if completion > inorder_retire:
                inorder_retire = completion
            rob_tail.append((uop_pos, inorder_retire))
            issue_time += issue_step
            mem_issue_time = max(mem_issue_time, issue_time - issue_step) + mem_step
            uop_pos += 1

        self.memsys.drain()
        total = max(issue_time, inorder_retire)
        self.cycles = max(0.0, total - warmup_cycles)
        return self.cycles
