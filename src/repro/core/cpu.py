"""Timestamp-based out-of-order core model.

This approximates the paper's P4-like machine (Table 1) at the fidelity a
trace-driven study needs: the binding constraints on pointer-intensive code
are (a) load→load dependences serialising pointer chases, (b) the ROB
bounding how far execution can run ahead of an outstanding miss, (c) issue
width bounding compute throughput, and (d) the mispredict penalty.  Each is
modelled directly:

* µops issue at ``issue_width`` per cycle; memory µops additionally at
  ``mem_units`` per cycle.
* A load executes at ``max(issue time, producer ready time)`` and completes
  after the memory-system latency; its completion is the ready time for
  dependent loads.
* Retirement is in-order: the running maximum of completion times.  A µop
  cannot issue until the µop ``reorder_buffer`` positions earlier has
  retired; loads/stores are additionally bounded by the load/store buffer.
* A mispredicted branch stalls the front end for ``mispredict_penalty``
  cycles after the branch completes.

Execution is *resumable*: all mid-run state lives in one
:class:`CoreRunState`, and :meth:`OutOfOrderCore.run` executes the trace
in segments between caller-supplied op-index *boundaries*, invoking a hook
at each one (the snapshot/digest point of :mod:`repro.snapshot`).  With no
boundaries the whole trace is one segment and the inner loop is exactly
the old hot path — zero per-µop overhead when snapshotting is off.
"""

from __future__ import annotations

from collections import deque

from repro import perf
from repro.core.memsys import TimingMemorySystem
from repro.params import CoreConfig
from repro.trace.ops import BRANCH, COMPUTE, LOAD, Trace

__all__ = [
    "CoreRunState",
    "OutOfOrderCore",
    "index_reaching",
    "snapshot_boundaries",
]


def snapshot_boundaries(ops: list, every: int) -> list[int]:
    """Interior op indices at which cumulative µops cross multiples of *every*.

    A boundary index ``i`` means "pause after executing ``ops[:i]``" — the
    first op boundary at which at least ``k * every`` µops have retired.
    The trace end is never a boundary (the run simply completes there), so
    an uninterrupted run and a resumed run sample identical boundaries.
    """
    if every <= 0:
        raise ValueError("snapshot interval must be positive")
    bounds: list[int] = []
    total = 0
    target = every
    for index, op in enumerate(ops):
        total += op[1] if op[0] == COMPUTE else 1
        if total >= target:
            bounds.append(index + 1)
            while target <= total:
                target += every
    if bounds and bounds[-1] >= len(ops):
        bounds.pop()
    return bounds


def index_reaching(ops: list, uop: int) -> int:
    """Smallest op index whose prefix covers at least *uop* µops."""
    if uop <= 0:
        return 0
    total = 0
    for index, op in enumerate(ops):
        total += op[1] if op[0] == COMPUTE else 1
        if total >= uop:
            return index + 1
    return len(ops)


class CoreRunState:
    """All mid-run execution state of the core — the unit of snapshot.

    Everything the inner loop reads or writes between two op boundaries
    lives here, so saving this object (plus the memory system) at a
    boundary and restoring it later continues the run bit-identically.
    """

    __slots__ = (
        "next_index",
        "uop_pos",
        "issue_time",
        "mem_issue_time",
        "inorder_retire",
        "warmup_cycles",
        "warmup_marked",
        "rob_tail",
        "load_buffer",
        "store_buffer",
        "ready",
    )

    def __init__(self, warmup_marked: bool) -> None:
        self.next_index = 0
        self.uop_pos = 0
        self.issue_time = 0.0
        self.mem_issue_time = 0.0
        self.inorder_retire = 0.0
        self.warmup_cycles = 0.0
        self.warmup_marked = warmup_marked
        # (uop position, in-order retire time at that µop) for long-latency
        # ops; enforces the ROB-occupancy issue constraint.
        self.rob_tail: deque = deque()
        self.load_buffer: deque = deque()
        self.store_buffer: deque = deque()
        self.ready: dict[int, float] = {}

    def state_dict(self) -> dict:
        return {
            "next_index": self.next_index,
            "uop_pos": self.uop_pos,
            "issue_time": self.issue_time,
            "mem_issue_time": self.mem_issue_time,
            "inorder_retire": self.inorder_retire,
            "warmup_cycles": self.warmup_cycles,
            "warmup_marked": self.warmup_marked,
            "rob_tail": [[pos, retire] for pos, retire in self.rob_tail],
            "load_buffer": list(self.load_buffer),
            "store_buffer": list(self.store_buffer),
            # Order-significant: (index, completion) insertion order.
            "ready": [[index, value] for index, value in self.ready.items()],
        }

    @classmethod
    def from_state(cls, state: dict) -> "CoreRunState":
        out = cls(state["warmup_marked"])
        out.next_index = state["next_index"]
        out.uop_pos = state["uop_pos"]
        out.issue_time = state["issue_time"]
        out.mem_issue_time = state["mem_issue_time"]
        out.inorder_retire = state["inorder_retire"]
        out.warmup_cycles = state["warmup_cycles"]
        out.rob_tail = deque(
            (pos, retire) for pos, retire in state["rob_tail"]
        )
        out.load_buffer = deque(state["load_buffer"])
        out.store_buffer = deque(state["store_buffer"])
        out.ready = {index: value for index, value in state["ready"]}
        return out


class OutOfOrderCore:
    """Consumes a µop trace, driving the timing memory system."""

    def __init__(self, config: CoreConfig, memsys: TimingMemorySystem) -> None:
        self.config = config
        self.memsys = memsys
        self.cycles = 0.0
        self.loads_executed = 0
        self.stores_executed = 0
        # Mid-run execution state; non-None only between a paused (or
        # restored) segment and run completion.
        self.run_state: CoreRunState | None = None

    def run(
        self,
        trace: Trace,
        warmup_uops: int = 0,
        boundaries=(),
        on_boundary=None,
    ) -> float | None:
        """Simulate the trace; returns total cycles (post-warm-up).

        *warmup_uops*: statistics-gathering starts after this many µops
        have retired (Section 2.2's warm-up discipline); the returned cycle
        count covers only the measured region.

        *boundaries* is an ascending sequence of interior op indices (see
        :func:`snapshot_boundaries`); at each one, after the segment's
        state has been written back, ``on_boundary(uop_pos)`` is called.
        If the hook returns ``False`` the run pauses — :attr:`run_state`
        holds the position, and calling :meth:`run` again continues from
        it — and ``None`` is returned instead of a cycle count.  A prior
        :meth:`load_state_dict` restore resumes the same way.
        """
        ops = trace.ops
        state = self.run_state
        if state is None:
            state = self.run_state = CoreRunState(warmup_uops == 0)
        total_ops = len(ops)
        if on_boundary is not None:
            for stop in boundaries:
                if stop <= state.next_index:
                    continue
                if stop >= total_ops:
                    break
                self._execute(state, ops, stop, warmup_uops)
                if on_boundary(state.uop_pos) is False:
                    return None
        if state.next_index < total_ops:
            self._execute(state, ops, total_ops, warmup_uops)
        # The tail drain (events outstanding after the last µop issues) is
        # timed as its own phase; the drain work interleaved with
        # execution is part of the timing-sim stage by construction.
        with perf.stage("timing-drain"):
            self.memsys.drain()
        perf.counter(
            "timing-events-posted", getattr(self.memsys, "_seq", 0)
        )
        total = max(state.issue_time, state.inorder_retire)
        self.cycles = max(0.0, total - state.warmup_cycles)
        self.run_state = None
        return self.cycles

    def _execute(
        self, state: CoreRunState, ops: list, stop: int, warmup_uops: int
    ) -> None:
        """Run ops[state.next_index:stop]; loop state lives in locals.

        The body is the original single-pass hot loop; state is staged
        into locals at segment entry and written back at segment exit, so
        segmentation costs nothing per µop.
        """
        cfg = self.config
        issue_step = 1.0 / cfg.issue_width
        mem_step = 1.0 / cfg.mem_units
        reorder_buffer = cfg.reorder_buffer
        load_buffer_cap = cfg.load_buffer
        store_buffer_cap = cfg.store_buffer
        mispredict_penalty = cfg.mispredict_penalty
        mem_load = self.memsys.load
        mem_store = self.memsys.store
        issue_time = state.issue_time
        mem_issue_time = state.mem_issue_time
        inorder_retire = state.inorder_retire
        uop_pos = state.uop_pos
        warmup_cycles = state.warmup_cycles
        warmup_marked = state.warmup_marked
        rob_tail = state.rob_tail
        load_buffer = state.load_buffer
        store_buffer = state.store_buffer
        ready = state.ready
        loads_executed = self.loads_executed
        stores_executed = self.stores_executed
        start = state.next_index
        if start == 0 and stop == len(ops):
            iterator = enumerate(ops)
        else:
            iterator = enumerate(ops[start:stop], start)

        for index, op in iterator:
            if not warmup_marked and uop_pos >= warmup_uops:
                warmup_cycles = max(issue_time, inorder_retire)
                warmup_marked = True
            kind = op[0]
            # ROB pressure: µops older than the window must have retired.
            window_floor = uop_pos - reorder_buffer
            while rob_tail and rob_tail[0][0] <= window_floor:
                _, retire = rob_tail.popleft()
                if retire > issue_time:
                    issue_time = retire
            if kind == COMPUTE:
                count = op[1]
                if not warmup_marked and uop_pos + count > warmup_uops:
                    # The warm-up boundary lands inside this compute run:
                    # interpolate the cycle at which it was crossed.
                    crossed = warmup_uops - uop_pos
                    warmup_cycles = max(
                        inorder_retire, issue_time + crossed * issue_step
                    )
                    warmup_marked = True
                issue_time += count * issue_step
                if issue_time > inorder_retire:
                    inorder_retire = issue_time
                uop_pos += count
                continue
            if kind == BRANCH:
                completion = issue_time + 1.0
                if completion > inorder_retire:
                    inorder_retire = completion
                if op[1]:
                    issue_time = completion + mispredict_penalty
                else:
                    issue_time += issue_step
                uop_pos += 1
                continue
            # Memory op: bounded by memory issue ports.
            if mem_issue_time > issue_time:
                issue_time = mem_issue_time
            if kind == LOAD:
                if len(load_buffer) >= load_buffer_cap:
                    oldest = load_buffer.popleft()
                    if oldest > issue_time:
                        issue_time = oldest
                dep = op[3]
                exec_start = issue_time
                if dep >= 0:
                    dep_ready = ready.get(dep, 0.0)
                    if dep_ready > exec_start:
                        exec_start = dep_ready
                latency = mem_load(op[1], op[2], int(exec_start))
                completion = exec_start + latency
                ready[index] = completion
                load_buffer.append(completion)
                loads_executed += 1
            else:  # STORE
                if len(store_buffer) >= store_buffer_cap:
                    oldest = store_buffer.popleft()
                    if oldest > issue_time:
                        issue_time = oldest
                latency = mem_store(op[1], op[2], int(issue_time))
                completion = issue_time + latency
                store_buffer.append(completion)
                stores_executed += 1
            if completion > inorder_retire:
                inorder_retire = completion
            rob_tail.append((uop_pos, inorder_retire))
            issue_time += issue_step
            # Bit-exact rewrite of max(m, issue_time - issue_step) + step:
            # the subtraction must happen after the increment to reproduce
            # the reference rounding.
            floor = issue_time - issue_step
            if mem_issue_time < floor:
                mem_issue_time = floor
            mem_issue_time += mem_step
            uop_pos += 1

        state.issue_time = issue_time
        state.mem_issue_time = mem_issue_time
        state.inorder_retire = inorder_retire
        state.uop_pos = uop_pos
        state.warmup_cycles = warmup_cycles
        state.warmup_marked = warmup_marked
        state.next_index = stop
        self.loads_executed = loads_executed
        self.stores_executed = stores_executed

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "loads_executed": self.loads_executed,
            "stores_executed": self.stores_executed,
            "run_state": (
                self.run_state.state_dict()
                if self.run_state is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        self.cycles = state["cycles"]
        self.loads_executed = state["loads_executed"]
        self.stores_executed = state["stores_executed"]
        run_state = state["run_state"]
        self.run_state = (
            CoreRunState.from_state(run_state)
            if run_state is not None else None
        )
