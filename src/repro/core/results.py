"""Result containers and derived metrics for both simulators."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["PrefetchAccounting", "FunctionalResult", "TimingResult"]


@dataclass(slots=True)
class PrefetchAccounting:
    """Per-prefetcher issue/usefulness/timeliness counters.

    *Full* masking means the demand access found the prefetched line
    resident in the UL2; *partial* means it matched the prefetch while the
    fill was still in flight and waited for part of the memory latency
    (Section 4.2.3 / Figure 10).
    """

    issued: int = 0
    completed: int = 0
    full_hits: int = 0
    partial_hits: int = 0
    dropped_resident: int = 0
    dropped_inflight: int = 0
    squashed_queue_full: int = 0
    # Prefetches squashed because no MSHR entry was free (real capacity
    # pressure or an injected exhaustion burst); demands are never blocked.
    squashed_mshr_full: int = 0
    dropped_untranslated: int = 0
    # Candidates whose page walk found no valid mapping (junk values that
    # passed the matcher but point into unmapped space): the walk fails
    # and the prefetch is dropped — the conservative-GC-style filtering
    # the scheme inherits for free.
    dropped_unmapped: int = 0
    evicted_unused: int = 0
    # Per-PrefetchKind breakdowns (kind name -> count): which flavour of
    # candidate (chain / next-line / prev-line / ...) was issued and which
    # earned a hit.  Drives the deeper-vs-wider analysis.
    issued_by_kind: dict = field(default_factory=dict)
    useful_by_kind: dict = field(default_factory=dict)

    def record_issue_kind(self, kind: str) -> None:
        self.issued_by_kind[kind] = self.issued_by_kind.get(kind, 0) + 1

    def record_useful_kind(self, kind: str) -> None:
        self.useful_by_kind[kind] = self.useful_by_kind.get(kind, 0) + 1

    def kind_accuracy(self, kind: str) -> float:
        issued = self.issued_by_kind.get(kind, 0)
        if not issued:
            return 0.0
        return self.useful_by_kind.get(kind, 0) / issued

    @property
    def useful(self) -> int:
        return self.full_hits + self.partial_hits

    @property
    def generated(self) -> int:
        """Candidates the predictor generated (Equation 2's denominator).

        Includes candidates dropped because their page walk failed — the
        predictor did generate them; the memory system rejected them.
        """
        return self.issued + self.dropped_unmapped + self.dropped_untranslated

    @property
    def accuracy(self) -> float:
        """Useful prefetches / prefetches issued."""
        return self.useful / self.issued if self.issued else 0.0

    @property
    def generated_accuracy(self) -> float:
        """Useful prefetches / candidates generated (Equation 2)."""
        return self.useful / self.generated if self.generated else 0.0

    @property
    def full_fraction(self) -> float:
        """Fraction of useful prefetches that fully masked the latency."""
        return self.full_hits / self.useful if self.useful else 0.0


@dataclass(slots=True)
class FunctionalResult:
    """Output of a functional (untimed) simulation."""

    name: str
    uops: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    demand_l1_misses: int = 0
    demand_l2_misses: int = 0
    l2_requests: int = 0
    # Demand L2 misses that would have occurred with prefetching disabled
    # is approximated as (observed misses + prefetch hits): every prefetch
    # hit was a miss avoided.
    stride: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    content: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    markov: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    # Content prefetches (and the hits they earned) that the stride
    # prefetcher would also have issued — subtracted for Figure 7/8's
    # "adjusted" metrics.
    content_issued_overlap: int = 0
    content_useful_overlap: int = 0
    # Windowed miss counts for MPTU traces (Figure 1).
    mptu_window_uops: int = 0
    mptu_trace: list = field(default_factory=list)
    tlb_misses: int = 0
    prefetch_page_walks: int = 0

    @property
    def misses_without_prefetching(self) -> int:
        return (
            self.demand_l2_misses
            + self.stride.useful
            + self.content.useful
            + self.markov.useful
        )

    @property
    def mptu(self) -> float:
        """Demand L2 misses per 1000 µops (the paper's MPTU metric)."""
        return 1000.0 * self.demand_l2_misses / self.uops if self.uops else 0.0

    def coverage(self, which: str = "content") -> float:
        """Prefetch hits / misses-without-prefetching (Equation 1)."""
        acct: PrefetchAccounting = getattr(self, which)
        base = self.misses_without_prefetching
        return acct.useful / base if base else 0.0

    def accuracy(self, which: str = "content") -> float:
        acct: PrefetchAccounting = getattr(self, which)
        return acct.accuracy

    @property
    def adjusted_content_coverage(self) -> float:
        """Content coverage minus hits the stride prefetcher duplicated."""
        base = self.misses_without_prefetching
        useful = max(0, self.content.useful - self.content_useful_overlap)
        return useful / base if base else 0.0

    @property
    def adjusted_content_accuracy(self) -> float:
        """Equation 2 over *generated* candidates, stride-adjusted.

        The denominator counts every candidate the predictor produced,
        including those the failing page walk rejected — that rejection
        rate is precisely what the compare/filter knobs control.
        """
        generated = self.content.generated - self.content_issued_overlap
        useful = max(0, self.content.useful - self.content_useful_overlap)
        return useful / generated if generated > 0 else 0.0


@dataclass(slots=True)
class TimingResult:
    """Output of a timing simulation."""

    name: str
    cycles: float = 0.0
    uops: int = 0
    instructions: int = 0
    loads: int = 0
    demand_l1_misses: int = 0
    demand_l2_requests: int = 0
    unmasked_l2_misses: int = 0
    stride: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    content: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    markov: PrefetchAccounting = field(default_factory=PrefetchAccounting)
    demand_page_walks: int = 0
    prefetch_page_walks: int = 0
    prefetch_walk_required: int = 0
    rescans: int = 0
    bus_transfers: int = 0
    bus_queue_delay: int = 0
    l2_pollution_evictions: int = 0
    # Dirty L2 victims written back to memory (each consumes bus occupancy).
    writebacks: int = 0
    # Fault-injection counts by type (empty when no injector was attached;
    # see repro.faults.FaultStats.as_dict).
    fault_injections: dict = field(default_factory=dict)
    # Set by repro.core.invariants.assert_integrity when this run passed
    # the full post-run invariant check.
    integrity_verified: bool = False
    # Streaming state digests sampled at snapshot boundaries when a
    # snapshot policy is active: [uop position, digest hex] pairs.  Two
    # runs of the same machine+trace are architecturally identical iff
    # these streams match (see repro.snapshot).
    state_digests: list = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Baseline cycles / our cycles (paper convention: >1 is faster)."""
        if not self.cycles:
            return 0.0
        return baseline.cycles / self.cycles

    @property
    def distribution_denominator(self) -> int:
        """UL2 load requests that would miss without prefetching."""
        return (
            self.unmasked_l2_misses
            + self.stride.useful
            + self.content.useful
            + self.markov.useful
        )

    def load_request_distribution(self) -> dict:
        """Figure 10's five stacked categories, as fractions summing to 1."""
        denom = self.distribution_denominator
        if not denom:
            return {
                "str-full": 0.0, "str-part": 0.0,
                "cpf-full": 0.0, "cpf-part": 0.0, "ul2-miss": 0.0,
            }
        return {
            "str-full": self.stride.full_hits / denom,
            "str-part": self.stride.partial_hits / denom,
            "cpf-full": self.content.full_hits / denom,
            "cpf-part": self.content.partial_hits / denom,
            "ul2-miss": self.unmasked_l2_misses / denom,
        }

    # -- snapshot hooks -------------------------------------------------------

    _ACCOUNTING_FIELDS = ("stride", "content", "markov")
    # The digest stream is carried in snapshot *metadata*, not in the
    # state tree: state digests are computed over this state_dict, so the
    # stream feeding back into itself would make a resumed run's digests
    # (restored stream differs by one entry) permanently mismatch the
    # uninterrupted run it must be compared against.
    _EXCLUDED_FIELDS = ("state_digests",)

    def state_dict(self) -> dict:
        """Every counter, including the per-prefetcher accounting."""
        state = {}
        for f in fields(self):
            if f.name in self._EXCLUDED_FIELDS:
                continue
            value = getattr(self, f.name)
            if f.name in self._ACCOUNTING_FIELDS:
                value = dataclass_state(value)
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = [list(v) if isinstance(v, (list, tuple)) else v
                         for v in value]
            state[f.name] = value
        return state

    def load_state_dict(self, state: dict) -> None:
        for f in fields(self):
            if f.name in self._EXCLUDED_FIELDS:
                continue
            value = state[f.name]
            if f.name in self._ACCOUNTING_FIELDS:
                load_dataclass_state(getattr(self, f.name), value)
                continue
            if isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = [list(v) if isinstance(v, (list, tuple)) else v
                         for v in value]
            setattr(self, f.name, value)
