"""Functional (untimed) cache simulator.

Prefetches complete instantly here, so every covered miss is a "full" hit —
which is exactly why the paper restricts coverage/accuracy to *tuning* the
heuristic ("they ... should not be construed as providing any true insight
into the performance").  This simulator serves three experiments:

* Figure 1 / Table 2 — MPTU (demand L2 misses per 1000 µops), windowed and
  aggregate, at 1 MB and 4 MB UL2 sizes;
* Figures 7 and 8 — adjusted coverage/accuracy sweeps over the matcher's
  compare/filter/align/step knobs.

"Adjusted" means content prefetches the stride prefetcher would also have
issued are subtracted (the paper isolates the content prefetcher's own
contribution); we implement that with a non-mutating
:meth:`StridePrefetcher.would_cover` probe at content-issue time.
"""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import Requester
from repro.core.results import FunctionalResult
from repro.memory.address import line_mask
from repro.memory.backing import BackingMemory
from repro.memory.pagetable import PageTable
from repro.params import MachineConfig
from repro.prefetch.base import PrefetchCandidate
from repro.prefetch.content import ContentPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.trace.ops import BRANCH, COMPUTE, LOAD, Trace

__all__ = ["FunctionalSimulator"]

# Per-line tracking flags (bitset line_tracking mode).
_FLAG_STRIDE = 1
_FLAG_OVERLAP = 2
_FLAG_COUNTED = 4


class FunctionalSimulator:
    """Runs a trace through the cache hierarchy with zero-latency fills."""

    def __init__(
        self,
        config: MachineConfig,
        memory: BackingMemory,
        page_table: PageTable | None = None,
        mptu_window_uops: int = 0,
        line_tracking: str = "bitset",
    ) -> None:
        self.config = config
        self.hier = CacheHierarchy(config, memory, page_table)
        self.stride = StridePrefetcher(
            config.stride, config.line_size,
            address_bits=config.content.address_bits,
        )
        self.content = ContentPrefetcher(config.content, config.line_size)
        self.markov = (
            MarkovPrefetcher(
                config.markov, config.line_size,
                address_bits=config.content.address_bits,
            )
            if config.markov.enabled else None
        )
        self.result = FunctionalResult("run")
        self.result.mptu_window_uops = mptu_window_uops
        self._line_mask = line_mask(
            config.line_size, config.content.address_bits
        )
        # Per-line tracking bits (see _FLAG_*): lines the stride
        # prefetcher has issued, the subset of content-prefetched lines
        # that overlap them (for the adjusted metrics of Figures 7/8),
        # and prefetch fills whose issue was counted (i.e. happened after
        # warm-up) — only their hits count as useful, keeping coverage
        # and accuracy consistent across the warm-up boundary.
        #
        # The default representation is one flag byte per physical line
        # index in a flat bytearray: the page table allocates frames
        # densely upward from its frame base, so line indexes are dense
        # and a bytearray replaces three hash sets on the per-prefetch
        # hot path.  ``line_tracking="sets"`` selects the original
        # three-set representation, kept as the equivalence oracle
        # (tests/test_functional_sim.py drives both and compares results).
        if line_tracking not in ("bitset", "sets"):
            raise ValueError("unknown line_tracking: %r" % line_tracking)
        self.line_tracking = line_tracking
        self._use_sets = line_tracking == "sets"
        self._line_shift = (config.line_size - 1).bit_length()
        self._line_flags = bytearray()
        self._stride_lines: set[int] = set()
        self._content_overlap: set[int] = set()
        self._counted_fills: set[int] = set()
        self._window_misses = 0
        self._window_uops = 0

    # ------------------------------------------------------------------

    def run(self, trace: Trace, warmup_uops: int = 0) -> FunctionalResult:
        """Simulate *trace*; statistics exclude the first *warmup_uops*."""
        result = self.result
        result.name = trace.name
        measuring = warmup_uops == 0
        uops_seen = 0
        # Hot loop: bind the per-op callees once, and skip the window
        # bookkeeping call entirely when no MPTU window is configured
        # (the common case for coverage/accuracy sweeps).
        windowed = bool(result.mptu_window_uops)
        tick = self._tick_window
        access = self._access
        for op in trace.ops:
            kind = op[0]
            if kind == COMPUTE:
                uops_seen += op[1]
                if windowed:
                    tick(op[1], measuring)
            elif kind == BRANCH:
                uops_seen += 1
                if windowed:
                    tick(1, measuring)
            else:
                uops_seen += 1
                if windowed:
                    tick(1, measuring)
                is_load = kind == LOAD
                access(op[1], op[2], is_load, measuring)
                if measuring:
                    if is_load:
                        result.loads += 1
                    else:
                        result.stores += 1
            if not measuring and uops_seen >= warmup_uops:
                measuring = True
        result.uops = max(0, trace.uop_count - warmup_uops)
        result.instructions = trace.instruction_count
        result.tlb_misses = self.hier.dtlb.stats.misses
        return result

    def _flag_index(self, line_p: int) -> int:
        """Bitset index for a physical line, growing the array to fit.

        Frames are allocated densely upward from the page table's frame
        base (see :mod:`repro.memory.pagetable`), so indexing by absolute
        line number keeps the array proportional to the touched physical
        footprint — one byte per line.
        """
        index = line_p >> self._line_shift
        flags = self._line_flags
        if index >= len(flags):
            flags.extend(bytes(index + 4096 - len(flags)))
        return index

    def _tick_window(self, uops: int, measuring: bool) -> None:
        window = self.result.mptu_window_uops
        if not window or not measuring:
            return
        self._window_uops += uops
        while self._window_uops >= window:
            self.result.mptu_trace.append(
                1000.0 * self._window_misses / window
            )
            self._window_misses = 0
            self._window_uops -= window

    # ------------------------------------------------------------------

    def _access(self, vaddr: int, pc: int, is_load: bool, measuring: bool) -> None:
        result = self.result
        if self.hier.l1.lookup(vaddr) is not None:
            return
        if measuring:
            result.demand_l1_misses += 1
        stride_candidates = self.stride.observe(pc, vaddr)
        translation = self.hier.translate(vaddr)
        paddr = translation.paddr
        for candidate in stride_candidates:
            self._prefetch(candidate, Requester.STRIDE, measuring)
        if measuring:
            result.l2_requests += 1
        line = self.hier.l2.lookup(paddr)
        line_v = vaddr & self._line_mask
        if line is not None:
            self._demand_hit(line, paddr, vaddr, measuring)
        else:
            if measuring:
                result.demand_l2_misses += 1
                self._window_misses += 1
            if self._use_sets:
                self._counted_fills.discard(paddr & self._line_mask)
            else:
                index = self._flag_index(paddr & self._line_mask)
                self._line_flags[index] &= ~_FLAG_COUNTED
            self.hier.l2.fill(paddr, vaddr=line_v, requester=Requester.DEMAND)
            if self.markov is not None:
                for candidate in self.markov.observe_miss(
                    vaddr, bool(stride_candidates)
                ):
                    self._prefetch(candidate, Requester.MARKOV, measuring)
            self._scan(line_v, vaddr, depth=0, measuring=measuring)
        self.hier.l1.fill(vaddr, vaddr=line_v)

    def _demand_hit(
        self, line, paddr: int, vaddr: int, measuring: bool
    ) -> None:
        line_p = paddr & self._line_mask
        if line.was_prefetched and not line.referenced and measuring:
            if self._use_sets:
                counted = line_p in self._counted_fills
                overlap = line_p in self._content_overlap
                if counted:
                    self._counted_fills.discard(line_p)
            else:
                index = self._flag_index(line_p)
                flags = self._line_flags[index]
                counted = flags & _FLAG_COUNTED
                overlap = flags & _FLAG_OVERLAP
                if counted:
                    self._line_flags[index] = flags ^ _FLAG_COUNTED
            if counted:
                acct = self._accounting(line.requester)
                acct.full_hits += 1
                if line.requester is Requester.CONTENT and overlap:
                    self.result.content_useful_overlap += 1
        rescan = self.content.should_rescan(line.depth, 0)
        line.promote(0, Requester.DEMAND)
        if rescan:
            self._scan(line.vaddr, vaddr, depth=0, measuring=measuring)

    def _accounting(self, requester: Requester):
        if requester is Requester.STRIDE:
            return self.result.stride
        if requester is Requester.MARKOV:
            return self.result.markov
        return self.result.content

    # ------------------------------------------------------------------

    def _prefetch(
        self, candidate: PrefetchCandidate, requester: Requester,
        measuring: bool,
    ) -> None:
        acct = self._accounting(requester)
        line_v = candidate.vaddr & self._line_mask
        paddr = self.hier.dtlb.peek(candidate.vaddr)
        if paddr is None:
            if (
                requester is Requester.CONTENT
                and self.config.content.placement == "offchip"
            ):
                acct.dropped_untranslated += 1
                return
            if not self.hier.page_table.is_mapped(candidate.vaddr):
                if measuring:
                    acct.dropped_unmapped += 1
                return
            translation = self.hier.translate(candidate.vaddr)
            paddr = translation.paddr
            if measuring:
                self.result.prefetch_page_walks += 1
        line_p = paddr & self._line_mask
        use_sets = self._use_sets
        if requester is Requester.STRIDE:
            if use_sets:
                self._stride_lines.add(line_p)
            else:
                self._line_flags[self._flag_index(line_p)] |= _FLAG_STRIDE
        resident = self.hier.l2.peek(line_p)
        if resident is not None:
            if self.content.should_rescan(resident.depth, candidate.depth):
                resident.promote(candidate.depth, requester)
                self._scan(
                    resident.vaddr, candidate.vaddr, candidate.depth,
                    measuring,
                )
            acct.dropped_resident += 1
            return
        if use_sets:
            if measuring:
                acct.issued += 1
                self._counted_fills.add(line_p)
            else:
                self._counted_fills.discard(line_p)
            if requester is Requester.CONTENT:
                if line_p in self._stride_lines:
                    self._content_overlap.add(line_p)
                    if measuring:
                        self.result.content_issued_overlap += 1
                else:
                    self._content_overlap.discard(line_p)
        else:
            index = self._flag_index(line_p)
            flags = self._line_flags[index]
            if measuring:
                acct.issued += 1
                flags |= _FLAG_COUNTED
            else:
                flags &= ~_FLAG_COUNTED
            if requester is Requester.CONTENT:
                if flags & _FLAG_STRIDE:
                    flags |= _FLAG_OVERLAP
                    if measuring:
                        self.result.content_issued_overlap += 1
                else:
                    flags &= ~_FLAG_OVERLAP
            self._line_flags[index] = flags
        self.hier.l2.fill(
            line_p,
            vaddr=line_v,
            requester=requester,
            depth=self.content.clamp_depth(candidate.depth),
        )
        # Prefetch fills are themselves scanned (the recurrence component).
        if requester is Requester.CONTENT:
            self._scan(line_v, candidate.vaddr, candidate.depth, measuring)

    def _scan(
        self, line_vaddr: int, effective_vaddr: int, depth: int,
        measuring: bool,
    ) -> None:
        if not self.config.content.enabled:
            return
        line_bytes = self.hier.read_line_bytes(line_vaddr)
        for candidate in self.content.scan_fill(
            line_vaddr, line_bytes, effective_vaddr, depth
        ):
            self._prefetch(candidate, Requester.CONTENT, measuring)
