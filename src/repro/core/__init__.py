"""Simulation engines.

Two simulators share the same caches, prefetchers and workloads:

* :class:`~repro.core.functional.FunctionalSimulator` — no timing; used for
  warm-up/MPTU characterisation (Figure 1, Table 2) and for tuning the
  pointer-recognition heuristic with coverage/accuracy (Figures 7 and 8),
  exactly the role the paper assigns those metrics ("they are being used
  strictly as a means of tuning the prefetch algorithm").
* :class:`~repro.core.simulator.TimingSimulator` — the cycle-level model
  (out-of-order core approximation + event-driven memory system) used for
  all speedup results (Figure 9 onward).
"""

from repro.core.functional import FunctionalSimulator
from repro.core.results import FunctionalResult, TimingResult
from repro.core.simulator import TimingSimulator, run_pair

__all__ = [
    "FunctionalResult",
    "FunctionalSimulator",
    "TimingResult",
    "TimingSimulator",
    "run_pair",
]
