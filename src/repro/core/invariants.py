"""Runtime invariant checking for the timing simulator.

A simulation that silently violates its own bookkeeping produces wrong
speedups that *look* plausible — the worst failure mode for a
reproduction.  This module validates, after (and partly during) a run:

* **event-time monotonicity** — no event is ever posted in the past of
  the memory system's clock (checked live when enabled);
* **MSHR leak-freedom** — every in-flight fill completes: the MSHR file
  and the event queue are empty once :meth:`finalize` has drained;
* **depth bound** — every resident line's stored request depth fits the
  per-line depth bits (the paper's ~2-bit budget);
* **arbiter integrity** — the bus arbiter is drained and its priority
  heap well-ordered (demand > stride > content, shallow before deep);
* **prefetch-accounting conservation** — per prefetcher,
  ``issued = completed + in-flight`` with in-flight zero after the drain,
  ``useful <= issued`` (useless = completed − useful), and the per-kind
  breakdowns summing to their totals.  Squashed/dropped candidates are
  counted before issue and so never enter the equation.

Under fault injection the simulator must either complete with all of the
above conserved or raise :class:`SimulationIntegrityError` — never
silently produce wrong numbers.

Enable globally with :func:`set_global_checks` (the CLI's
``--check-invariants`` flag and the ``REPRO_CHECK_INVARIANTS``
environment variable both route here) or per run via
``TimingSimulator(..., check_invariants=True)``.
"""

from __future__ import annotations

import os

__all__ = [
    "SimulationIntegrityError",
    "set_global_checks",
    "checks_enabled",
    "collect_violations",
    "assert_integrity",
]

_GLOBAL_CHECKS = False


class SimulationIntegrityError(RuntimeError):
    """A simulation run violated an internal consistency invariant."""


def set_global_checks(enabled: bool) -> bool:
    """Toggle process-wide invariant checking; returns the previous value."""
    global _GLOBAL_CHECKS
    previous = _GLOBAL_CHECKS
    _GLOBAL_CHECKS = bool(enabled)
    return previous


def checks_enabled() -> bool:
    """Process-wide flag, or the ``REPRO_CHECK_INVARIANTS`` env variable."""
    if _GLOBAL_CHECKS:
        return True
    return os.environ.get("REPRO_CHECK_INVARIANTS", "") not in ("", "0")


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------

_ACCT_COUNTERS = (
    "issued", "completed", "full_hits", "partial_hits", "dropped_resident",
    "dropped_inflight", "squashed_queue_full", "squashed_mshr_full",
    "dropped_untranslated", "dropped_unmapped", "evicted_unused",
)


def _check_accounting(name: str, acct, out: list) -> None:
    for counter in _ACCT_COUNTERS:
        value = getattr(acct, counter)
        if value < 0:
            out.append("%s.%s is negative (%d)" % (name, counter, value))
    if acct.issued != acct.completed:
        out.append(
            "%s accounting not conserved: issued=%d but completed=%d "
            "(%d fill(s) lost in flight)"
            % (name, acct.issued, acct.completed,
               acct.issued - acct.completed)
        )
    if acct.useful > acct.issued:
        out.append(
            "%s useful (%d) exceeds issued (%d)"
            % (name, acct.useful, acct.issued)
        )
    by_kind = sum(acct.issued_by_kind.values())
    if by_kind != acct.issued:
        out.append(
            "%s per-kind issue counts (%d) do not sum to issued (%d)"
            % (name, by_kind, acct.issued)
        )
    useful_by_kind = sum(acct.useful_by_kind.values())
    if useful_by_kind > acct.useful:
        out.append(
            "%s per-kind useful counts (%d) exceed useful (%d)"
            % (name, useful_by_kind, acct.useful)
        )


def collect_violations(simulator) -> list:
    """All invariant violations of a finished run (empty list = clean).

    *simulator* is a :class:`repro.core.simulator.TimingSimulator` whose
    :meth:`run` has completed (events drained via ``finalize``).
    """
    memsys = simulator.memsys
    result = simulator.result
    violations: list = list(memsys.integrity_log)

    if memsys._events:
        violations.append(
            "event queue not drained: %d event(s) pending after finalize"
            % len(memsys._events)
        )
    leaked = memsys.mshr.inflight_lines()
    if leaked:
        violations.append(
            "MSHR leak: %d entr%s still in flight after drain (lines %s)"
            % (len(leaked), "y" if len(leaked) == 1 else "ies",
               ", ".join("0x%x" % line for line in leaked[:8]))
        )
    if len(memsys.bus_arbiter):
        violations.append(
            "bus arbiter not drained: %d request(s) still queued"
            % len(memsys.bus_arbiter)
        )
    if not memsys.bus_arbiter.verify_priority_order():
        violations.append("bus arbiter heap violates priority ordering")

    max_depth = (1 << simulator.content.depth_bits) - 1
    for store_name, lines in (
        ("L1", memsys.hier.l1.contents()),
        ("UL2", memsys.hier.l2.contents()),
        ("prefetch buffer",
         [] if memsys.prefetch_buffer is None
         else [memsys.prefetch_buffer.peek(p)
               for p in memsys.prefetch_buffer.resident_lines()]),
    ):
        for line in lines:
            if not 0 <= line.depth <= max_depth:
                violations.append(
                    "%s line 0x%x depth %d outside the %d-bit bound [0, %d]"
                    % (store_name, line.tag, line.depth,
                       simulator.content.depth_bits, max_depth)
                )
                break  # one per store is enough to fail the run

    for name, acct in (
        ("stride", result.stride),
        ("content", result.content),
        ("markov", result.markov),
    ):
        _check_accounting(name, acct, violations)

    if result.unmasked_l2_misses > result.demand_l2_requests:
        violations.append(
            "unmasked L2 misses (%d) exceed demand L2 requests (%d)"
            % (result.unmasked_l2_misses, result.demand_l2_requests)
        )
    return violations


def assert_integrity(simulator) -> None:
    """Raise :class:`SimulationIntegrityError` on any violation.

    On success, stamps ``result.integrity_verified`` so downstream
    consumers (experiments, sweeps) can tell a checked run from an
    unchecked one.
    """
    violations = collect_violations(simulator)
    if violations:
        raise SimulationIntegrityError(
            "simulation integrity violated (%d finding(s)):\n  - %s"
            % (len(violations), "\n  - ".join(violations))
        )
    simulator.result.integrity_verified = True
