"""Miss-status holding registers: in-flight fill tracking.

The paper's arbiters check "to see if a matching memory transaction is
currently in-flight" before enqueueing a prefetch (dropped if so), and a
demand load that encounters an in-flight *prefetch* for the same line
promotes it to demand priority and depth — positive reinforcement plus a
partially-masked miss (Section 3.5).  :class:`MSHRFile` is the structure
both behaviours query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.line import Requester

__all__ = ["MissStatus", "MSHRFile"]


@dataclass
class MissStatus:
    """One in-flight line fill."""

    line_paddr: int
    line_vaddr: int
    requester: Requester
    depth: int
    issue_time: int
    fill_time: int
    # Demand requests that arrived while this fill was in flight; each one
    # is a partially-masked miss if the original request was a prefetch.
    demand_waiters: int = 0
    promoted: bool = False
    extra: dict = field(default_factory=dict)

    def promote_to_demand(self) -> None:
        """A demand load matched this in-flight prefetch."""
        self.demand_waiters += 1
        if self.requester.is_prefetch and not self.promoted:
            self.promoted = True
            self.depth = 0


class MSHRFile:
    """Tracks fills in flight between the L2 and memory."""

    def __init__(self) -> None:
        self._inflight: dict[int, MissStatus] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, line_paddr: int) -> bool:
        return line_paddr in self._inflight

    def lookup(self, line_paddr: int) -> MissStatus | None:
        return self._inflight.get(line_paddr)

    def allocate(self, status: MissStatus) -> None:
        if status.line_paddr in self._inflight:
            raise ValueError(
                "duplicate in-flight fill for line 0x%x" % status.line_paddr
            )
        self._inflight[status.line_paddr] = status
        if len(self._inflight) > self.peak_occupancy:
            self.peak_occupancy = len(self._inflight)

    def complete(self, line_paddr: int) -> MissStatus:
        """Retire the in-flight entry when its fill arrives."""
        status = self._inflight.pop(line_paddr, None)
        if status is None:
            raise KeyError("no in-flight fill for line 0x%x" % line_paddr)
        return status

    def cancel(self, line_paddr: int) -> MissStatus | None:
        """Drop an in-flight entry (squashed prefetch)."""
        return self._inflight.pop(line_paddr, None)

    def inflight_lines(self) -> list[int]:
        return list(self._inflight)
