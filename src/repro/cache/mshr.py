"""Miss-status holding registers: in-flight fill tracking.

The paper's arbiters check "to see if a matching memory transaction is
currently in-flight" before enqueueing a prefetch (dropped if so), and a
demand load that encounters an in-flight *prefetch* for the same line
promotes it to demand priority and depth — positive reinforcement plus a
partially-masked miss (Section 3.5).  :class:`MSHRFile` is the structure
both behaviours query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.line import Requester

__all__ = ["MissStatus", "MSHRFile"]


@dataclass(slots=True)
class MissStatus:
    """One in-flight line fill."""

    line_paddr: int
    line_vaddr: int
    requester: Requester
    depth: int
    issue_time: int
    fill_time: int
    # Demand requests that arrived while this fill was in flight; each one
    # is a partially-masked miss if the original request was a prefetch.
    demand_waiters: int = 0
    promoted: bool = False
    extra: dict = field(default_factory=dict)

    def promote_to_demand(self) -> None:
        """A demand load matched this in-flight prefetch."""
        self.demand_waiters += 1
        if self.requester.is_prefetch and not self.promoted:
            self.promoted = True
            self.depth = 0

    def state_dict(self) -> dict:
        """Snapshot hook: one in-flight fill as a plain-value tree."""
        return {
            "line_paddr": self.line_paddr,
            "line_vaddr": self.line_vaddr,
            "requester": int(self.requester),
            "depth": self.depth,
            "issue_time": self.issue_time,
            "fill_time": self.fill_time,
            "demand_waiters": self.demand_waiters,
            "promoted": self.promoted,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MissStatus":
        status = cls(
            state["line_paddr"],
            state["line_vaddr"],
            Requester(state["requester"]),
            state["depth"],
            state["issue_time"],
            state["fill_time"],
            demand_waiters=state["demand_waiters"],
            promoted=state["promoted"],
        )
        status.extra = dict(state["extra"])
        return status


class MSHRFile:
    """Tracks fills in flight between the L2 and memory.

    *capacity* bounds prefetch allocations: callers consult :attr:`full`
    before allocating on behalf of a prefetcher and squash when no entry
    is free.  Demand allocations are never refused (the machine would
    stall the core instead; the timing cost surfaces as queueing delay),
    so ``allocate`` itself does not enforce the bound.
    """

    __slots__ = ("capacity", "_inflight", "peak_occupancy")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self._inflight: dict[int, MissStatus] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, line_paddr: int) -> bool:
        return line_paddr in self._inflight

    @property
    def full(self) -> bool:
        """No entry free for a new *prefetch* allocation."""
        return (
            self.capacity is not None
            and len(self._inflight) >= self.capacity
        )

    def lookup(self, line_paddr: int) -> MissStatus | None:
        return self._inflight.get(line_paddr)

    def allocate(self, status: MissStatus) -> None:
        """Register an in-flight fill.

        A duplicate ``line_paddr`` raises rather than clobbering the
        existing entry: the arbiters' in-flight check (Section 3.5) must
        have dropped the request before it got here, so a duplicate is a
        simulator bug — silently replacing the entry would orphan the
        original fill event and corrupt the prefetch accounting.
        """
        if status.line_paddr in self._inflight:
            raise ValueError(
                "duplicate in-flight fill for line 0x%x" % status.line_paddr
            )
        self._inflight[status.line_paddr] = status
        if len(self._inflight) > self.peak_occupancy:
            self.peak_occupancy = len(self._inflight)

    def complete(self, line_paddr: int) -> MissStatus:
        """Retire the in-flight entry when its fill arrives."""
        status = self._inflight.pop(line_paddr, None)
        if status is None:
            raise KeyError("no in-flight fill for line 0x%x" % line_paddr)
        return status

    def cancel(self, line_paddr: int) -> MissStatus | None:
        """Drop an in-flight entry (squashed prefetch)."""
        return self._inflight.pop(line_paddr, None)

    def inflight_lines(self) -> list[int]:
        return list(self._inflight)

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """In-flight fills in allocation order, plus the peak counter."""
        return {
            "inflight": [
                status.state_dict() for status in self._inflight.values()
            ],
            "peak_occupancy": self.peak_occupancy,
        }

    def load_state_dict(self, state: dict) -> None:
        self._inflight = {}
        for status_state in state["inflight"]:
            status = MissStatus.from_state(status_state)
            self._inflight[status.line_paddr] = status
        self.peak_occupancy = state["peak_occupancy"]
