"""Cache line metadata.

A line records who brought it in (:class:`Requester`), its stored request
depth (the reinforcement state of Section 3.4.2), and whether it has been
referenced by a demand access since the fill (used for accuracy stats and
pollution accounting).
"""

from __future__ import annotations

import enum

__all__ = ["Requester", "CacheLine"]


class Requester(enum.IntEnum):
    """Who issued the memory request that filled a line.

    The integer order is the arbiter priority order of Section 3.5:
    demand requests first, then stride prefetches ("favored ... because of
    their higher accuracy"), then content prefetches, then Markov
    prefetches (same class as content in our model, but kept distinct for
    accounting).
    """

    DEMAND = 0
    STRIDE = 1
    CONTENT = 2
    MARKOV = 3

    @property
    def is_prefetch(self) -> bool:
        return self is not Requester.DEMAND


class CacheLine:
    """Metadata for one resident cache line."""

    __slots__ = (
        "tag",
        "vaddr",
        "requester",
        "depth",
        "referenced",
        "dirty",
        "fill_time",
        "kind",
    )

    def __init__(
        self,
        tag: int,
        vaddr: int,
        requester: Requester = Requester.DEMAND,
        depth: int = 0,
        fill_time: int = 0,
        kind: str = "",
    ) -> None:
        self.tag = tag
        # The virtual line address is retained so the on-chip prefetcher can
        # rescan resident lines (the L2 itself is physically indexed; the
        # prefetcher works on virtual addresses via the DTLB).
        self.vaddr = vaddr
        self.requester = requester
        self.depth = depth
        self.referenced = False
        self.dirty = False
        self.fill_time = fill_time
        # PrefetchKind name for prefetched lines ("chain", "next", ...).
        self.kind = kind

    @property
    def was_prefetched(self) -> bool:
        return self.requester.is_prefetch

    def promote(self, depth: int, requester: Requester) -> None:
        """Lower the stored request depth (reinforcement promotion).

        "When any memory request hits in the cache, and has a request depth
        less than the stored request depth in the matching cache line ...
        the stored request depth of the prefetched cache line is updated
        (promoted)."

        Promotion is strictly monotone: the stored depth only ever
        decreases, the owning :class:`Requester` is never overwritten, and
        ``referenced`` is never cleared — so a deep prefetch racing a
        demand fill (``SetAssociativeCache.fill`` on a resident line) can
        never demote the line's metadata.
        """
        if depth < self.depth:
            self.depth = depth
        if requester is Requester.DEMAND:
            self.referenced = True

    def state_dict(self) -> dict:
        """Snapshot hook: full line metadata as a plain-value tree."""
        return {
            "tag": self.tag,
            "vaddr": self.vaddr,
            "requester": int(self.requester),
            "depth": self.depth,
            "referenced": self.referenced,
            "dirty": self.dirty,
            "fill_time": self.fill_time,
            "kind": self.kind,
        }

    @classmethod
    def from_state(cls, state: dict) -> "CacheLine":
        """Snapshot hook: rebuild a line from :meth:`state_dict` output."""
        line = cls(
            state["tag"],
            state["vaddr"],
            requester=Requester(state["requester"]),
            depth=state["depth"],
            fill_time=state["fill_time"],
            kind=state["kind"],
        )
        line.referenced = state["referenced"]
        line.dirty = state["dirty"]
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CacheLine(tag=0x%x, req=%s, depth=%d, ref=%s)" % (
            self.tag, self.requester.name, self.depth, self.referenced,
        )
