"""Wiring of the two-level cache hierarchy plus address translation.

The paper's memory system (Figure 6) features "a virtually indexed L1 data
cache and a physically indexed L2 unified cache; meaning L1 cache misses
require a virtual-to-physical address translation prior to accessing the L2
cache".  :class:`CacheHierarchy` bundles the L1, UL2, DTLB, page table and
backing memory and centralises that translation step so both the functional
and the timing simulator share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.setassoc import SetAssociativeCache
from repro.memory.address import line_mask
from repro.memory.backing import BackingMemory
from repro.memory.pagetable import PageTable
from repro.params import MachineConfig
from repro.tlb.dtlb import DataTLB

__all__ = ["TranslationResult", "CacheHierarchy"]


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one virtual-to-physical translation."""

    paddr: int
    tlb_hit: bool
    # Physical line addresses read by the hardware page walker (empty on a
    # TLB hit).  Page-walk traffic bypasses the content prefetcher.
    walk_line_addrs: tuple = ()


class CacheHierarchy:
    """L1 + UL2 + DTLB + page table + backing memory for one machine."""

    def __init__(
        self,
        config: MachineConfig,
        memory: BackingMemory | None = None,
        page_table: PageTable | None = None,
    ) -> None:
        self.config = config
        self.memory = memory if memory is not None else BackingMemory(
            page_size=config.page_size
        )
        self.page_table = page_table if page_table is not None else PageTable(
            page_size=config.page_size
        )
        self.l1 = SetAssociativeCache(config.l1d, name="L1D")
        self.l2 = SetAssociativeCache(config.ul2, name="UL2")
        self.dtlb = DataTLB(config.dtlb)
        self._line_mask = line_mask(
            config.line_size, config.content.address_bits
        )
        # Pages the workload image actually contains are mapped up front —
        # a real allocator mapped them at allocation time.  The TLB stays
        # cold (translations still require walks), but prefetches to
        # genuinely unmapped space (junk candidates) can be recognised and
        # dropped, as a failing hardware walk would.
        page_shift = config.page_size.bit_length() - 1
        for page_number in self.memory.touched_page_numbers():
            self.page_table.translate(page_number << page_shift)

    # -- address helpers -----------------------------------------------------

    def line_of(self, address: int) -> int:
        return address & self._line_mask

    def translate(self, vaddr: int) -> TranslationResult:
        """Translate through the DTLB, walking the page table on a miss."""
        paddr = self.dtlb.translate(vaddr)
        if paddr is not None:
            return TranslationResult(paddr, tlb_hit=True)
        paddr = self.page_table.translate(vaddr)
        walk = tuple(
            self.line_of(a) for a in self.page_table.walk_addresses(vaddr)
        )
        self.dtlb.insert(vaddr, paddr)
        return TranslationResult(paddr, tlb_hit=False, walk_line_addrs=walk)

    def probe_translation(self, vaddr: int) -> int | None:
        """TLB-only probe (no walk, no state change); ``None`` on miss.

        Used by the off-chip prefetcher model which has no walker access.
        """
        return self.dtlb.peek(vaddr)

    def read_line_bytes(self, line_vaddr: int) -> bytes:
        """Fetch the raw bytes of a (virtual) cache line for scanning."""
        return self.memory.read_line(line_vaddr, self.config.line_size)

    def reset_stats(self) -> None:
        self.l1.stats = type(self.l1.stats)()
        self.l2.stats = type(self.l2.stats)()
        self.dtlb.reset_stats()

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """L1 + UL2 + DTLB + page table (backing memory is read-only).

        The workload's memory image is deliberately excluded: timing runs
        never mutate it (stores are timing-only), and the experiments
        rebuild it deterministically from the workload key — snapshots
        stay megabytes smaller for it.
        """
        return {
            "l1": self.l1.state_dict(),
            "l2": self.l2.state_dict(),
            "dtlb": self.dtlb.state_dict(),
            "page_table": self.page_table.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.l1.load_state_dict(state["l1"])
        self.l2.load_state_dict(state["l2"])
        self.dtlb.load_state_dict(state["dtlb"])
        self.page_table.load_state_dict(state["page_table"])
