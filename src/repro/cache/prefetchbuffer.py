"""A dedicated prefetch buffer (the classic anti-pollution alternative).

The paper fills prefetches directly into the UL2 and runs a limit study
showing why that demands "reasonable accuracy with any prefetcher that
directly fills into the cache" (Section 3.5).  The era's standard
alternative — used by Jouppi's stream buffers and many later designs — is
a small FIFO *prefetch buffer* beside the cache: prefetched lines wait
there, moving into the cache only when a demand access hits them, so junk
never evicts demand-fetched data.

This module implements that alternative so the tradeoff can be measured
(see the ``buffer`` ablation): pollution immunity versus a capacity far
smaller than the way of the cache the depth bits would otherwise cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.line import CacheLine, Requester
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["PrefetchBufferStats", "PrefetchBuffer"]


@dataclass
class PrefetchBufferStats:
    fills: int = 0
    hits: int = 0
    evictions: int = 0
    duplicates: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.fills if self.fills else 0.0


class PrefetchBuffer:
    """Fully-associative FIFO buffer of prefetched lines.

    Lines are keyed by physical line address.  ``promote`` removes a hit
    line so the caller can move it into the cache proper — matching the
    buffer designs where a demand hit transfers the line.
    """

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.stats = PrefetchBufferStats()
        self._lines: OrderedDict[int, CacheLine] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line_paddr: int) -> bool:
        return line_paddr in self._lines

    def fill(
        self,
        line_paddr: int,
        line_vaddr: int,
        requester: Requester,
        depth: int,
        time: int = 0,
        kind: str = "",
    ) -> CacheLine | None:
        """Insert a prefetched line; returns the FIFO victim, if any."""
        if line_paddr in self._lines:
            self.stats.duplicates += 1
            return None
        victim = None
        if len(self._lines) >= self.entries:
            _, victim = self._lines.popitem(last=False)
            self.stats.evictions += 1
        line = CacheLine(
            line_paddr, line_vaddr, requester=requester, depth=depth,
            fill_time=time, kind=kind,
        )
        self._lines[line_paddr] = line
        self.stats.fills += 1
        return victim

    def promote(self, line_paddr: int) -> CacheLine | None:
        """Remove and return the line on a demand hit (move-to-cache)."""
        line = self._lines.pop(line_paddr, None)
        if line is not None:
            self.stats.hits += 1
        return line

    def evict(self, line_paddr: int) -> CacheLine | None:
        """Drop a line without a demand hit (thrash / invalidation)."""
        line = self._lines.pop(line_paddr, None)
        if line is not None:
            self.stats.evictions += 1
        return line

    def peek(self, line_paddr: int) -> CacheLine | None:
        return self._lines.get(line_paddr)

    def resident_lines(self) -> list[int]:
        return list(self._lines)

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Buffered lines in FIFO order plus counters."""
        return {
            "stats": dataclass_state(self.stats),
            "lines": [
                [line_paddr, line.state_dict()]
                for line_paddr, line in self._lines.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        self._lines = OrderedDict(
            (line_paddr, CacheLine.from_state(line_state))
            for line_paddr, line_state in state["lines"]
        )
