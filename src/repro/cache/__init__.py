"""Set-associative cache models with per-line prefetch-depth state.

The UL2's per-line *request depth* bits (2 bits per line, under 0.5 % space
overhead) are what enable the paper's feedback-directed path reinforcement:
a hit whose incoming depth is lower than the stored depth promotes the line
and triggers a rescan (Section 3.4.2).
"""

from repro.cache.line import CacheLine, Requester
from repro.cache.mshr import MSHRFile, MissStatus
from repro.cache.prefetchbuffer import PrefetchBuffer
from repro.cache.setassoc import SetAssociativeCache

__all__ = [
    "CacheLine",
    "MSHRFile",
    "MissStatus",
    "PrefetchBuffer",
    "Requester",
    "SetAssociativeCache",
]
