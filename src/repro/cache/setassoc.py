"""Set-associative cache with true-LRU replacement.

Each set is an ``OrderedDict`` mapping tag to :class:`CacheLine`; moving a
line to the end on access gives O(1) true LRU.  The cache is indexed by
whatever address the caller passes (the L1 is virtually indexed, the UL2
physically indexed — the caller chooses).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.cache.line import CacheLine, Requester
from repro.params import CacheConfig
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass(slots=True)
class CacheStats:
    """Counters accumulated by one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    fills: int = 0
    prefetch_fills_by: dict = field(default_factory=dict)
    useful_prefetches_by: dict = field(default_factory=dict)
    polluting_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def record_prefetch_fill(self, requester: Requester) -> None:
        key = requester.name
        self.prefetch_fills_by[key] = self.prefetch_fills_by.get(key, 0) + 1

    def record_useful_prefetch(self, requester: Requester) -> None:
        key = requester.name
        self.useful_prefetches_by[key] = (
            self.useful_prefetches_by.get(key, 0) + 1
        )


class SetAssociativeCache:
    """A single cache level."""

    __slots__ = (
        "config",
        "name",
        "stats",
        "_num_sets",
        "_line_shift",
        "_set_mask",
        "_assoc",
        "_sets",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._line_shift = config.line_size.bit_length() - 1
        # Power-of-two set counts (every real configuration) index with a
        # mask; the modulo fallback only exists for odd test geometries.
        if self._num_sets & (self._num_sets - 1) == 0:
            self._set_mask = self._num_sets - 1
        else:
            self._set_mask = None
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    # -- geometry -----------------------------------------------------------

    def set_index(self, address: int) -> int:
        if self._set_mask is not None:
            return (address >> self._line_shift) & self._set_mask
        return (address >> self._line_shift) % self._num_sets

    def tag_of(self, address: int) -> int:
        return address >> self._line_shift

    # -- access -------------------------------------------------------------

    def lookup(self, address: int, update_lru: bool = True) -> CacheLine | None:
        """Access the cache; returns the line on a hit, ``None`` on a miss.

        Counts towards hit/miss statistics.  Use :meth:`peek` for
        non-architectural probes (e.g. the prefetcher checking whether a
        candidate already resides in the cache).
        """
        stats = self.stats
        stats.accesses += 1
        tag = address >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[
            tag & mask if mask is not None else tag % self._num_sets
        ]
        line = cache_set.get(tag)
        if line is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if update_lru:
            cache_set.move_to_end(tag)
        return line

    def peek(self, address: int) -> CacheLine | None:
        """Probe without touching LRU state or statistics."""
        tag = address >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[
            tag & mask if mask is not None else tag % self._num_sets
        ]
        return cache_set.get(tag)

    def fill(
        self,
        address: int,
        vaddr: int | None = None,
        requester: Requester = Requester.DEMAND,
        depth: int = 0,
        time: int = 0,
        kind: str = "",
    ) -> CacheLine | None:
        """Insert the line containing *address*; returns the evicted line.

        If the line is already resident its metadata is promoted instead of
        being refilled (a prefetch that raced a demand fill, for example).
        """
        tag = address >> self._line_shift
        mask = self._set_mask
        cache_set = self._sets[
            tag & mask if mask is not None else tag % self._num_sets
        ]
        existing = cache_set.get(tag)
        if existing is not None:
            # Inline CacheLine.promote (a fill racing a resident line is
            # common on the prefetch path): monotone depth, demand marks.
            if depth < existing.depth:
                existing.depth = depth
            if requester is Requester.DEMAND:
                existing.referenced = True
            cache_set.move_to_end(tag)
            return None
        stats = self.stats
        victim = None
        if len(cache_set) >= self._assoc:
            _, victim = cache_set.popitem(last=False)
            stats.evictions += 1
            if (
                victim.requester is not Requester.DEMAND
                and not victim.referenced
            ):
                stats.polluting_evictions += 1
        cache_set[tag] = CacheLine(
            tag,
            vaddr if vaddr is not None else address,
            requester=requester,
            depth=depth,
            fill_time=time,
            kind=kind,
        )
        stats.fills += 1
        if requester is not Requester.DEMAND:
            stats.record_prefetch_fill(requester)
        return victim

    def invalidate(self, address: int) -> CacheLine | None:
        """Remove and return the line containing *address*, if resident."""
        cache_set = self._sets[self.set_index(address)]
        return cache_set.pop(self.tag_of(address), None)

    # -- introspection --------------------------------------------------------

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def contents(self) -> list[CacheLine]:
        """All resident lines (test/debug helper)."""
        return [line for s in self._sets for line in s.values()]

    def lru_order(self, address: int) -> list[int]:
        """Tags in the set of *address*, LRU first (test helper)."""
        return list(self._sets[self.set_index(address)])

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Full architectural state: every set's lines in LRU order."""
        return {
            "stats": dataclass_state(self.stats),
            "sets": [
                [line.state_dict() for line in cache_set.values()]
                for cache_set in self._sets
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore contents, LRU order, and depth bits exactly."""
        sets = state["sets"]
        if len(sets) != self._num_sets:
            raise ValueError(
                "%s snapshot has %d sets; this cache has %d"
                % (self.name, len(sets), self._num_sets)
            )
        load_dataclass_state(self.stats, state["stats"])
        self._sets = [
            OrderedDict(
                (line_state["tag"], CacheLine.from_state(line_state))
                for line_state in set_state
            )
            for set_state in sets
        ]
