"""Post-hoc analysis of simulation runs.

* :class:`~repro.analysis.lifetimes.PrefetchLifetimeTracker` — attaches to
  a timing simulation's observer hook and records every prefetch's
  issue → fill → first-use (or never-used) lifecycle, yielding the chain
  depth histogram and timeliness distributions behind Figures 9/10.
* :mod:`repro.analysis.report` — renders one or more results as a
  markdown report.
"""

from repro.analysis.lifetimes import LifetimeSummary, PrefetchLifetimeTracker
from repro.analysis.multiseed import SeedStatistics, seed_sweep
from repro.analysis.report import render_markdown_report

__all__ = [
    "LifetimeSummary",
    "PrefetchLifetimeTracker",
    "SeedStatistics",
    "render_markdown_report",
    "seed_sweep",
]
