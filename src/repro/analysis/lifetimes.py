"""Prefetch lifetime tracking.

Attach a :class:`PrefetchLifetimeTracker` to a
:class:`~repro.core.simulator.TimingSimulator`'s memory system to record,
for every prefetch issued:

* the request depth and candidate kind at issue;
* issue-to-fill latency (how long the memory system took);
* fill-to-use distance (how far ahead of the demand stream it ran — the
  timeliness the paper's full/partial classification summarises);
* whether it was ever used at all.

Example::

    simulator = TimingSimulator(config, workload.memory)
    tracker = PrefetchLifetimeTracker.attach(simulator)
    simulator.run(workload.trace)
    print(tracker.summary().describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LifetimeRecord", "LifetimeSummary", "PrefetchLifetimeTracker"]


@dataclass
class LifetimeRecord:
    line_paddr: int
    requester: object
    depth: int
    kind: str
    issue_time: int
    fill_time: int = -1
    use_time: int = -1
    full: bool = False

    @property
    def used(self) -> bool:
        return self.use_time >= 0

    @property
    def fill_latency(self) -> int:
        if self.fill_time < 0:
            return -1
        return self.fill_time - self.issue_time

    @property
    def lead_time(self) -> int:
        """Fill-to-use distance; negative when the demand got there first."""
        if self.use_time < 0 or self.fill_time < 0:
            return -1
        return self.use_time - self.fill_time


@dataclass
class LifetimeSummary:
    total: int = 0
    used: int = 0
    full: int = 0
    depth_histogram: dict = field(default_factory=dict)
    kind_histogram: dict = field(default_factory=dict)
    mean_fill_latency: float = 0.0
    mean_lead_time: float = 0.0

    @property
    def use_rate(self) -> float:
        return self.used / self.total if self.total else 0.0

    def describe(self) -> str:
        lines = [
            "prefetches issued:   %d" % self.total,
            "used:                %d (%.1f%%)"
            % (self.used, 100 * self.use_rate),
            "fully timely:        %d" % self.full,
            "mean fill latency:   %.0f cycles" % self.mean_fill_latency,
            "mean lead time:      %.0f cycles" % self.mean_lead_time,
            "by depth:            %s" % dict(sorted(
                self.depth_histogram.items()
            )),
            "by kind:             %s" % dict(sorted(
                self.kind_histogram.items()
            )),
        ]
        return "\n".join(lines)


class PrefetchLifetimeTracker:
    """Observer recording the lifecycle of every prefetch."""

    def __init__(self) -> None:
        self.records: list[LifetimeRecord] = []
        self._open: dict[int, LifetimeRecord] = {}

    @classmethod
    def attach(cls, simulator) -> "PrefetchLifetimeTracker":
        """Create a tracker and install it on *simulator*'s memory system."""
        tracker = cls()
        simulator.memsys.observer = tracker
        return tracker

    # -- observer callbacks (called by TimingMemorySystem) ----------------

    def on_prefetch_issue(
        self, line_paddr: int, requester, depth: int, kind: str, time: int
    ) -> None:
        record = LifetimeRecord(
            line_paddr, requester, depth, kind, issue_time=time
        )
        self.records.append(record)
        self._open[line_paddr] = record

    def on_prefetch_fill(self, line_paddr: int, time: int) -> None:
        record = self._open.get(line_paddr)
        if record is not None and record.fill_time < 0:
            record.fill_time = time

    def on_prefetch_hit(self, line_paddr: int, time: int, full: bool) -> None:
        record = self._open.pop(line_paddr, None)
        if record is not None:
            record.use_time = time
            record.full = full

    # -- aggregation ------------------------------------------------------

    def summary(self) -> LifetimeSummary:
        summary = LifetimeSummary(total=len(self.records))
        fill_latencies = []
        lead_times = []
        for record in self.records:
            summary.depth_histogram[record.depth] = (
                summary.depth_histogram.get(record.depth, 0) + 1
            )
            summary.kind_histogram[record.kind] = (
                summary.kind_histogram.get(record.kind, 0) + 1
            )
            if record.used:
                summary.used += 1
                if record.full:
                    summary.full += 1
                if record.lead_time >= 0:
                    lead_times.append(record.lead_time)
            if record.fill_latency >= 0:
                fill_latencies.append(record.fill_latency)
        if fill_latencies:
            summary.mean_fill_latency = (
                sum(fill_latencies) / len(fill_latencies)
            )
        if lead_times:
            summary.mean_lead_time = sum(lead_times) / len(lead_times)
        return summary
