"""Markdown report rendering for simulation results."""

from __future__ import annotations

__all__ = ["render_markdown_report", "save_markdown_report"]


def _percent(value: float) -> str:
    return "%.1f%%" % (100.0 * value)


def render_markdown_report(
    results: dict,
    baselines: dict | None = None,
    title: str = "Simulation report",
) -> str:
    """Render named :class:`TimingResult` runs as a markdown document.

    Parameters
    ----------
    results:
        Mapping of run label to :class:`TimingResult`.
    baselines:
        Optional mapping of the same labels to baseline results; when
        present a speedup column is included.
    """
    lines = ["# %s" % title, ""]
    header = ["run", "cycles", "IPC", "UL2 misses", "CDP issued",
              "CDP accuracy", "full/partial"]
    if baselines:
        header.insert(3, "speedup")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for label, result in results.items():
        row = [
            label,
            "%.0f" % result.cycles,
            "%.2f" % result.ipc,
            str(result.unmasked_l2_misses),
            str(result.content.issued),
            _percent(result.content.accuracy),
            "%d / %d" % (result.content.full_hits,
                         result.content.partial_hits),
        ]
        if baselines:
            baseline = baselines.get(label)
            speedup = (
                "%.3f" % result.speedup_over(baseline)
                if baseline is not None else "-"
            )
            row.insert(3, speedup)
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    # Per-run distribution sections.
    for label, result in results.items():
        lines.append("## %s — UL2 load-request distribution" % label)
        lines.append("")
        distribution = result.load_request_distribution()
        lines.append("| category | share |")
        lines.append("|---|---|")
        for category, fraction in distribution.items():
            lines.append("| %s | %s |" % (category, _percent(fraction)))
        lines.append("")
        kinds = result.content.issued_by_kind
        if kinds:
            lines.append("### content prefetches by kind")
            lines.append("")
            lines.append("| kind | issued | useful | accuracy |")
            lines.append("|---|---|---|---|")
            for kind in sorted(kinds):
                issued = kinds[kind]
                useful = result.content.useful_by_kind.get(kind, 0)
                lines.append("| %s | %d | %d | %s |" % (
                    kind, issued, useful,
                    _percent(useful / issued if issued else 0.0),
                ))
            lines.append("")
    return "\n".join(lines)


def save_markdown_report(results: dict, path: str, **kwargs) -> None:
    """Render and write a report to *path*."""
    with open(path, "w") as handle:
        handle.write(render_markdown_report(results, **kwargs))
