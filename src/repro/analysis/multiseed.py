"""Multi-seed statistics: are the speedups robust to workload randomness?

Workload generation is seeded; a single seed gives one draw of structure
layouts, probe sequences, and branch outcomes.  :func:`seed_sweep` runs a
configuration across several seeds and reports mean, standard deviation,
and a (normal-approximation) 95% confidence interval for the speedup —
cheap rigor the original paper's single-trace methodology could not offer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.simulator import TimingSimulator
from repro.params import MachineConfig
from repro.workloads.suite import build_benchmark

__all__ = ["SeedStatistics", "seed_sweep"]


@dataclass
class SeedStatistics:
    benchmark: str
    speedups: list

    @property
    def n(self) -> int:
        return len(self.speedups)

    @property
    def mean(self) -> float:
        return sum(self.speedups) / self.n if self.n else 0.0

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.speedups) / (self.n - 1)
        return math.sqrt(variance)

    @property
    def confidence95(self) -> tuple:
        """(low, high) of a normal-approximation 95% interval."""
        if self.n < 2:
            return (self.mean, self.mean)
        half = 1.96 * self.stdev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        low, high = self.confidence95
        return "%s: %.3f +/- %.3f  [%.3f, %.3f]  (n=%d)" % (
            self.benchmark, self.mean, self.stdev, low, high, self.n,
        )


def seed_sweep(
    config: MachineConfig,
    benchmark: str,
    seeds=(1, 2, 3, 4, 5),
    scale: float = 0.1,
    baseline_config: MachineConfig | None = None,
    warmup_fraction: float = 0.25,
) -> SeedStatistics:
    """Measure *config*'s speedup over the stride baseline across seeds."""
    if baseline_config is None:
        baseline_config = config.with_content(enabled=False).with_markov(
            enabled=False
        )
    speedups = []
    for seed in seeds:
        workload = build_benchmark(benchmark, scale=scale, seed=seed)
        warmup = int(workload.trace.uop_count * warmup_fraction)
        baseline = TimingSimulator(baseline_config, workload.memory).run(
            workload.trace, warmup
        )
        enhanced = TimingSimulator(config, workload.memory).run(
            workload.trace, warmup
        )
        speedups.append(enhanced.speedup_over(baseline))
    return SeedStatistics(benchmark=benchmark, speedups=speedups)
