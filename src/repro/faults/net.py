"""Seeded fault injection for the *network* between client and server.

:mod:`repro.faults.injector` perturbs the simulated hardware,
:mod:`repro.faults.infra` perturbs the processes and disks around it —
this module perturbs the wire.  The HTTP front end
(:mod:`repro.service.http`) claims to serve heavy traffic; that claim is
only real if dropped connections, stalled reads, truncated responses,
and flipped bytes are survivable, because on a large fleet they are not
rare events, they are the steady state.

:class:`ChaosTCPProxy` is a transparent TCP proxy (stdlib asyncio, no
protocol knowledge) that sits between the clients and a
``ServiceHTTPServer`` and injects one fault per accepted connection,
decided by a PRNG keyed on ``(chaos seed, connection index)`` — the same
string-seeded scheme as :func:`repro.faults.infra._rng`, so a storm is
fully replayable from its seed alone.  Fault families:

``reset_pre``
    The connection is aborted the moment it is accepted, before a byte
    flows — the classic mid-deploy connection refusal.
``reset_mid_request``
    Half of the client's first write is forwarded upstream, then both
    sides are aborted: the server sees a torn request, the client a
    reset while sending.
``reset_mid_response``
    Half of the server's first write is forwarded downstream, then both
    sides are aborted: the client sees a headers-or-body cut mid-read.
``truncate``
    The first response chunk is cut short and the connection is closed
    *cleanly* (FIN, not RST): a short body against ``Content-Length`` —
    the failure mode checksumming transports exist for.
``corrupt``
    One byte of the first response chunk is inverted and the stream
    otherwise flows normally: the response parses (or doesn't), but the
    payload is wrong — only the client's digest verification catches it.
``stall``
    Slowloris in both directions: the client's request bytes are held
    for ``stall_seconds`` before being forwarded.  The server's
    header-read timeout or the client's per-attempt timeout — whichever
    exists — is what ends it.
``latency``
    A seeded delay is inserted before the response flows — not a
    failure, but the tail-latency spike that hedged requests exist for.

Why this is safe to retry against: every service result is
content-addressed by its request digest and digest-verified end to end,
so a retried or hedged request can only ever produce a byte-identical
result.  The proxy never changes *what* is computed — only whether a
given attempt's bytes arrive intact — which is exactly the paper's
stateless-prefetch argument transplanted to the transport.

Used by ``tests/test_faults_net.py``, ``scripts/soak_serve.py``, and
``scripts/bench_perf.py``'s ``http_chaos`` degradation curve.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass

from repro.faults.infra import _rng

__all__ = [
    "ChaosTCPProxy",
    "FAULT_FAMILIES",
    "NetChaosConfig",
    "net_storm",
]

#: Decision order of the fault families.  Fixed and part of the replay
#: contract: the cumulative-rate roll walks this tuple, so reordering it
#: would change every seeded decision.
FAULT_FAMILIES = (
    "reset_pre",
    "reset_mid_request",
    "reset_mid_response",
    "truncate",
    "corrupt",
    "stall",
    "latency",
)


@dataclass(frozen=True)
class NetChaosConfig:
    """One seeded network-fault profile; rates are per *connection*.

    A connection suffers at most one fault (a single roll against the
    cumulative rates, in :data:`FAULT_FAMILIES` order); the remaining
    probability mass is a clean pass-through.  Keep the sum of rates
    at or below 1.0.
    """

    seed: int = 0
    reset_pre_rate: float = 0.0
    reset_mid_request_rate: float = 0.0
    reset_mid_response_rate: float = 0.0
    truncate_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    #: How long a stalled connection holds its bytes.  Sized to beat the
    #: server's header timeout or the client's attempt timeout — whichever
    #: the scenario wants to exercise.
    stall_seconds: float = 2.0
    latency_rate: float = 0.0
    #: Injected latency window (uniform seconds) for ``latency`` faults.
    latency: tuple = (0.05, 0.25)

    def rates(self) -> dict:
        """``{family: rate}`` in decision order."""
        return {
            "reset_pre": self.reset_pre_rate,
            "reset_mid_request": self.reset_mid_request_rate,
            "reset_mid_response": self.reset_mid_response_rate,
            "truncate": self.truncate_rate,
            "corrupt": self.corrupt_rate,
            "stall": self.stall_rate,
            "latency": self.latency_rate,
        }

    def decide(self, rng) -> str | None:
        """This connection's fault (or ``None``) from one PRNG roll."""
        roll = rng.random()
        acc = 0.0
        for family in FAULT_FAMILIES:
            acc += self.rates()[family]
            if roll < acc:
                return family
        return None


def net_storm(seed: int = 0, stall_seconds: float = 1.0) -> NetChaosConfig:
    """A moderate every-family storm (~45% of connections faulted).

    ``stall_seconds`` defaults short so storm suites keep moving — a
    stalled connection costs one client attempt, not a parked worker.
    """
    return NetChaosConfig(
        seed=seed,
        reset_pre_rate=0.05,
        reset_mid_request_rate=0.05,
        reset_mid_response_rate=0.08,
        truncate_rate=0.07,
        corrupt_rate=0.07,
        stall_rate=0.05,
        stall_seconds=stall_seconds,
        latency_rate=0.08,
    )


def _abort(writer) -> None:
    """Hard-close one side (RST where the transport supports it)."""
    if writer is None:
        return
    transport = getattr(writer, "transport", None)
    try:
        if transport is not None:
            transport.abort()
        else:
            writer.close()
    except (ConnectionError, OSError, RuntimeError):
        pass


class ChaosTCPProxy:
    """A seeded byte-mangling TCP proxy in front of one upstream port.

    Construction is cheap; :meth:`start` binds (``port=0`` picks a free
    port, ``self.port`` reports it).  Observability for tests and the
    soak harness: :attr:`connections` counts accepted connections,
    :attr:`injected` counts injected faults by family, and
    :attr:`decisions` logs ``(connection_index, fault_or_None)`` in
    acceptance order — two proxies with the same config produce the
    same decision log, which is what *seeded* chaos means.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        chaos: NetChaosConfig,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.chaos = chaos
        self.host = host
        self.port = port
        self.connections = 0
        self.injected: dict = {}
        self.decisions: list = []
        self._count = itertools.count()
        self._server: asyncio.AbstractServer | None = None
        self._writers: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ChaosTCPProxy":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            _abort(writer)
        self._writers.clear()

    async def __aenter__(self) -> "ChaosTCPProxy":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- the per-connection plan -------------------------------------------

    def _record(self, fault: str) -> None:
        self.injected[fault] = self.injected.get(fault, 0) + 1

    async def _handle(self, client_reader, client_writer) -> None:
        index = next(self._count)
        self.connections += 1
        rng = _rng(self.chaos.seed, "conn", index)
        fault = self.chaos.decide(rng)
        self.decisions.append((index, fault))
        if fault is not None:
            self._record(fault)
        self._writers.add(client_writer)
        server_writer = None
        try:
            if fault == "reset_pre":
                _abort(client_writer)
                return
            try:
                server_reader, server_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except OSError:
                _abort(client_writer)
                return
            self._writers.add(server_writer)
            # Per-direction one-shot mutators; decisions that need more
            # randomness (delay lengths, cut points) draw from the same
            # connection-keyed PRNG so the whole plan replays.
            latency_delay = (
                rng.uniform(*self.chaos.latency)
                if fault == "latency" else 0.0
            )
            up = asyncio.ensure_future(self._pump(
                client_reader, server_writer, fault,
                direction="up",
            ))
            down = asyncio.ensure_future(self._pump(
                server_reader, client_writer, fault,
                direction="down", delay=latency_delay,
            ))
            try:
                done, pending = await asyncio.wait(
                    {up, down}, return_when=asyncio.FIRST_COMPLETED
                )
            except asyncio.CancelledError:
                # Event-loop teardown cancelled this handler mid-pump.
                # Absorb it: a cancelled-but-pending handler task makes
                # the stdlib streams connection_made callback log a
                # spurious CancelledError after the loop closes.
                pending = {up, down}
            # One side finished (EOF or abort): tear the other down too —
            # a proxy must not hold half-open connections forever.
            for task in pending:
                task.cancel()
            try:
                await asyncio.gather(up, down, return_exceptions=True)
            except asyncio.CancelledError:
                pass
        finally:
            for writer in (client_writer, server_writer):
                if writer is None:
                    continue
                self._writers.discard(writer)
                try:
                    writer.close()
                except (ConnectionError, OSError, RuntimeError):
                    pass

    async def _pump(self, reader, writer, fault, direction, delay=0.0):
        """Forward bytes one way, applying this direction's fault once.

        ``up`` is client→server (request bytes), ``down`` is
        server→client (response bytes).
        """
        armed = True
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                if armed:
                    armed = False
                    if direction == "up":
                        if fault == "reset_mid_request":
                            writer.write(chunk[: max(1, len(chunk) // 2)])
                            await writer.drain()
                            _abort(writer)
                            return
                        if fault == "stall":
                            # Slowloris: hold the request bytes; whoever
                            # has the tighter timeout wins.
                            await asyncio.sleep(self.chaos.stall_seconds)
                    elif direction == "down":
                        if fault == "reset_mid_response":
                            writer.write(chunk[: max(1, len(chunk) // 2)])
                            await writer.drain()
                            _abort(writer)
                            return
                        if fault == "truncate":
                            # Clean FIN after a short body: the client's
                            # Content-Length read comes up short.
                            writer.write(chunk[: max(1, len(chunk) // 2)])
                            await writer.drain()
                            writer.close()
                            return
                        if fault == "corrupt":
                            # Flip one byte in the back half — usually
                            # the body; a header hit just breaks parsing,
                            # which is equally survivable.
                            mutated = bytearray(chunk)
                            mutated[(len(mutated) * 3) // 4] ^= 0xFF
                            chunk = bytes(mutated)
                        if delay:
                            await asyncio.sleep(delay)
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            try:
                if writer.transport is not None \
                        and not writer.transport.is_closing():
                    writer.write_eof()
            except (ConnectionError, OSError, RuntimeError, ValueError):
                pass
