"""Seeded fault injection for the timing memory system.

The paper's graceful-degradation claim — mispredicted pointers are
squashed by the priority arbiters and never stall demand traffic — is
asserted by the happy path alone in a plain simulation run.  This package
supplies the adversarial conditions: a :class:`FaultInjector` attached to
:class:`repro.core.memsys.TimingMemorySystem` perturbs bus grants, DTLB
state, scanned line contents, MSHR availability, and prefetched-line
residency at configurable, seeded rates (:class:`repro.params.FaultConfig`).

Under any fault scenario the simulator must still satisfy the invariants of
:mod:`repro.core.invariants` (accounting conservation, MSHR leak-freedom,
event-time monotonicity, ...) or raise a typed
``SimulationIntegrityError`` — it must never silently produce wrong
speedups.

:mod:`repro.faults.infra` is the same idea one layer up: seeded faults
in the *infrastructure* that runs the simulator — SIGKILLed worker
processes, stalled heartbeats, corrupted result-store entries — driving
the serving tier's crash-only chaos suite.  It is imported lazily (it
pulls in :mod:`repro.service`); reach it as ``repro.faults.infra``.
"""

from repro.faults.injector import FaultInjector, FaultStats, fault_storm

__all__ = ["FaultInjector", "FaultStats", "fault_storm"]
