"""Seeded fault injection for the *infrastructure* that runs simulations.

:mod:`repro.faults.injector` perturbs the simulated hardware; this
module perturbs the machinery around it — the worker processes, the
heartbeat channel, and the result store — so the serving tier's
crash-only claims can be *proved* instead of assumed.  The paper's
stateless-prefetcher argument transfers directly: every service result
is content-addressed by its request digest, so any worker, process, or
store entry may die at any moment and the system must recompute and
converge to digest-identical results.

Three fault families, all driven by seeded, replayable decisions:

* **Worker kills** — a supervised process worker SIGKILLs *itself*
  mid-job (an uncatchable, genuine death; the scheduler sees a worker
  crash, not a cooperative exception).  Decisions are keyed by
  ``(chaos seed, digest, attempt)``, so a killed job's retry rolls a
  fresh decision and eventually survives — except jobs whose request
  seed is listed in ``kill_seeds``, which die on *every* attempt: those
  are the poison jobs the quarantine must catch.
* **Heartbeat stalls** — the worker writes one heartbeat then wedges in
  a sleep loop with the heartbeat silenced.  Only the scheduler's
  reaper can recover it (the wall-clock timeout may be far longer);
  this is the fault the stall window exists for.
* **Store corruption** — :class:`ChaosStore` damages entries *after* a
  successful put, the way real corruption arrives (torn writes, bit
  rot), in two flavours: a bit flip inside the result body (checksum
  mismatch on read; the envelope — and its repair fingerprint — stays
  readable) and file truncation (the whole envelope is unreadable;
  unrepairable from the entry alone, so it must degrade to a cache
  miss).  Every injected corruption is recorded in
  :attr:`ChaosStore.corrupted` so tests can assert the scrubber found
  100% of them.

The worker-side hooks travel inside the job spec (``spec["chaos"]``), so
they work identically however the worker was spawned; nothing here is
imported by production paths unless a chaos profile is configured.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.service.store import ResultStore

__all__ = [
    "ChaosStore",
    "InfraChaosConfig",
    "arm_worker_chaos",
    "chaos_action",
    "corrupt_entry",
    "fabric_action",
    "infra_storm",
]


@dataclass(frozen=True)
class InfraChaosConfig:
    """One seeded infrastructure-fault profile.

    Rates are per *execution attempt* (worker faults) or per *put*
    (store faults).  ``kill_seeds`` lists request seeds whose jobs are
    killed on every attempt — deterministic poison for quarantine tests.
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    #: Self-SIGKILL fires after a uniform delay in this window, so the
    #: death lands mid-job rather than before any work starts.
    kill_delay: tuple = (0.01, 0.08)
    heartbeat_stall_rate: float = 0.0
    kill_seeds: tuple = ()
    #: Per-job death rate keyed by the executing fabric *cell* (the
    #: coordinator stamps ``worker``/``worker_jobs`` into the chaos
    #: payload), not by the job: the same digest survives on the
    #: respawned worker, modelling a flaky host rather than a poison
    #: request.  Zero outside fabric mode.
    fabric_kill_rate: float = 0.0
    store_corrupt_rate: float = 0.0
    #: Fraction of injected store corruptions that truncate the file
    #: (unreadable, unrepairable) instead of bit-flipping the body
    #: (checksum mismatch, repairable from the intact fingerprint).
    store_truncate_fraction: float = 0.0

    def worker_spec(self) -> dict | None:
        """The picklable ``spec["chaos"]`` payload, or ``None`` if this
        profile injects no worker faults."""
        if (self.worker_kill_rate <= 0 and self.heartbeat_stall_rate <= 0
                and self.fabric_kill_rate <= 0 and not self.kill_seeds):
            return None
        return {
            "seed": int(self.seed),
            "kill_rate": float(self.worker_kill_rate),
            "kill_delay": tuple(self.kill_delay),
            "stall_rate": float(self.heartbeat_stall_rate),
            "fabric_kill_rate": float(self.fabric_kill_rate),
            "kill_seeds": tuple(int(s) for s in self.kill_seeds),
        }


def infra_storm(seed: int = 0) -> InfraChaosConfig:
    """A moderate every-fault-family profile for chaos suites."""
    return InfraChaosConfig(
        seed=seed,
        worker_kill_rate=0.25,
        heartbeat_stall_rate=0.15,
        store_corrupt_rate=0.4,
        store_truncate_fraction=0.35,
    )


def _rng(chaos_seed, *key) -> random.Random:
    """A PRNG keyed by the chaos seed plus a stable decision key.

    String seeding keeps decisions replayable across processes and runs
    (no dependence on ``PYTHONHASHSEED``).
    """
    return random.Random("%s|%s" % (chaos_seed, "|".join(map(str, key))))


def chaos_action(chaos: dict, digest: str, attempt: int,
                 request_seed: int) -> tuple:
    """The fault (if any) for one execution attempt.

    Returns ``("kill", delay)``, ``("stall", 0.0)``, or ``(None, 0.0)``.
    Pure function of its arguments — the scheduler, the worker, and the
    test can all replay the same decision.
    """
    if request_seed in chaos.get("kill_seeds", ()):
        return ("kill", 0.0)
    rng = _rng(chaos["seed"], digest, attempt)
    roll = rng.random()
    if roll < chaos.get("stall_rate", 0.0):
        return ("stall", 0.0)
    if roll < chaos.get("stall_rate", 0.0) + chaos.get("kill_rate", 0.0):
        low, high = chaos.get("kill_delay", (0.01, 0.08))
        return ("kill", rng.uniform(low, high))
    return (None, 0.0)


def fabric_action(chaos: dict, attempt: int = 1) -> tuple:
    """The per-*cell* fault (if any) for one fabric job hand-out.

    Keyed by ``(chaos seed, worker name, jobs completed on that worker,
    attempt)`` — the cell identity the coordinator stamps into the
    payload plus the scheduler's retry counter.  The worker/jobs pair
    makes the fault a property of the flaky host; the attempt makes
    every retry a fresh roll even when it lands back on the same cell
    at the same position (a respawned cell keeps its name and count),
    so storms converge instead of re-killing one job forever.  Pure and
    replayable like :func:`chaos_action`.
    """
    rate = chaos.get("fabric_kill_rate", 0.0)
    worker = chaos.get("worker")
    if rate <= 0 or worker is None:
        return (None, 0.0)
    rng = _rng(chaos["seed"], "fabric", worker,
               chaos.get("worker_jobs", 0), attempt)
    if rng.random() < rate:
        low, high = chaos.get("kill_delay", (0.01, 0.08))
        return ("kill", rng.uniform(low, high))
    return (None, 0.0)


def arm_worker_chaos(spec: dict) -> None:
    """Apply this attempt's fault decision inside a worker process.

    ``kill`` starts a daemon timer that SIGKILLs the process after the
    decided delay — if the job finishes first, the worker exits normally
    and the decision was a near-miss, exactly like real transient
    failures.  ``stall`` wedges the worker forever with its heartbeat
    already silenced (the heartbeat thread is never started for a
    stalled worker: :func:`execute_job` arms chaos *after* writing the
    initial beat, so the reaper sees one beat and then silence).
    Fabric cells additionally roll :func:`fabric_action` against their
    own identity; either decision alone is enough to arm the kill.
    """
    chaos = spec["chaos"]
    action, delay = chaos_action(
        chaos, spec["digest"], int(spec.get("attempt", 1)), spec["seed"]
    )
    if action is None:
        action, delay = fabric_action(chaos, int(spec.get("attempt", 1)))
    if action == "kill":
        def die() -> None:
            os.kill(os.getpid(), signal.SIGKILL)

        timer = threading.Timer(delay, die)
        timer.daemon = True
        timer.start()
    elif action == "stall":
        while True:  # wedged: only the reaper's SIGKILL ends this worker
            time.sleep(0.05)


# -- store corruption ---------------------------------------------------------

def corrupt_entry(path: str, mode: str) -> None:
    """Damage one stored entry in place.

    ``"flip"`` inverts a byte inside the pickled envelope's result body
    (the entry still loads; its checksum no longer matches; the repair
    fingerprint survives).  ``"truncate"`` cuts the file in half (the
    envelope is unreadable; nothing is recoverable from it).
    """
    if mode == "truncate":
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(max(1, size // 2))
        return
    if mode != "flip":
        raise ValueError("unknown corruption mode %r" % mode)
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    body = bytearray(envelope["result"])
    body[len(body) // 2] ^= 0xFF
    envelope["result"] = bytes(body)
    # Deliberately NOT the atomic-put path: corruption does not fsync.
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)


class ChaosStore(ResultStore):
    """A :class:`ResultStore` that corrupts entries just after ``put``.

    Corruption decisions are seeded per digest; every injected fault is
    recorded in :attr:`corrupted` (digest → mode) so a chaos suite can
    assert the scrubber finds and handles the complete set.  Setting
    :attr:`armed` to ``False`` stops injection — the "faulty disk
    replaced" moment that must precede a scrub-with-repair (with the
    per-digest decisions still armed, a repair's own put would be
    re-corrupted identically, forever).
    """

    def __init__(self, directory: str, chaos: InfraChaosConfig) -> None:
        super().__init__(directory)
        self.chaos = chaos
        self.corrupted: dict = {}
        self.armed = True

    def put(self, digest, result, fingerprint=None, meta=None) -> str:
        path = super().put(
            digest, result, fingerprint=fingerprint, meta=meta
        )
        if not self.armed:
            return path
        rng = _rng(self.chaos.seed, "store", digest)
        if rng.random() < self.chaos.store_corrupt_rate:
            mode = ("truncate"
                    if rng.random() < self.chaos.store_truncate_fraction
                    else "flip")
            corrupt_entry(path, mode)
            self.corrupted[digest] = mode
        return path
