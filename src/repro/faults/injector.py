"""The fault injector: one seeded PRNG driving every fault type.

Hook points (called by :class:`repro.core.memsys.TimingMemorySystem`):

* :meth:`FaultInjector.bus_grant_penalty` — extra fill delay per grant
  (a lost grant retries after a full bus latency; a delayed grant adds a
  fixed penalty).  Fills always complete, so accounting stays conserved.
* :meth:`FaultInjector.pre_translation` — before a demand translation:
  may invalidate the accessed entry (forced miss) or storm-invalidate a
  batch of random entries (miss storm).
* :meth:`FaultInjector.maybe_corrupt_line` — replaces a scanned line with
  adversarial bytes whose every word *passes* the virtual-address matcher
  (garbage pointers sharing the compare bits of the effective address).
* :meth:`FaultInjector.mshr_exhausted` — during a storm window, prefetch
  issues find no free MSHR and are squashed; demands are never blocked.
* :meth:`FaultInjector.maybe_thrash` — after a prefetch fill, evicts a
  prefetched-but-unreferenced line from the prefetch buffer (or UL2).

Every decision comes from ``random.Random(config.seed)``, so a fault
scenario is exactly reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro.params import ContentConfig, FaultConfig
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["FaultStats", "FaultInjector", "fault_storm"]


@dataclass
class FaultStats:
    """Counts of injected faults, by type."""

    bus_drops: int = 0
    bus_delays: int = 0
    tlb_drops: int = 0
    tlb_storms: int = 0
    tlb_entries_invalidated: int = 0
    corrupted_scans: int = 0
    mshr_storms: int = 0
    mshr_rejections: int = 0
    thrash_evictions: int = 0

    @property
    def total(self) -> int:
        return (
            self.bus_drops + self.bus_delays + self.tlb_drops
            + self.tlb_storms + self.corrupted_scans + self.mshr_storms
            + self.thrash_evictions
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Injects the faults described by one :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        self._rng = random.Random(config.seed)
        # Set by attach(); the bus latency prices a dropped grant's retry.
        self._bus_latency = 0
        self._mshr_storm_until = -1

    def attach(self, memsys) -> None:
        """Bind to a memory system (records timing constants)."""
        self._bus_latency = memsys.bus.latency
        memsys.faults = self

    # -- bus ----------------------------------------------------------------

    def bus_grant_penalty(self) -> int:
        """Extra cycles added to one granted transfer's fill time."""
        cfg = self.config
        roll = self._rng.random()
        if roll < cfg.bus_drop_rate:
            self.stats.bus_drops += 1
            # The grant was lost in flight: the requester re-arbitrates and
            # pays the memory latency again.
            return self._bus_latency
        if roll < cfg.bus_drop_rate + cfg.bus_delay_rate:
            self.stats.bus_delays += 1
            return cfg.bus_delay_cycles
        return 0

    # -- DTLB ---------------------------------------------------------------

    def pre_translation(self, dtlb, vaddr: int) -> None:
        """Perturb the DTLB before a demand translation of *vaddr*."""
        cfg = self.config
        if cfg.tlb_storm_rate and self._rng.random() < cfg.tlb_storm_rate:
            self.stats.tlb_storms += 1
            self.stats.tlb_entries_invalidated += dtlb.invalidate_random(
                self._rng, cfg.tlb_storm_size
            )
        if cfg.tlb_drop_rate and self._rng.random() < cfg.tlb_drop_rate:
            if dtlb.invalidate(vaddr):
                self.stats.tlb_drops += 1

    # -- content scanner ----------------------------------------------------

    def maybe_corrupt_line(
        self, line_bytes: bytes, effective_vaddr: int, content: ContentConfig
    ) -> bytes:
        """Possibly replace *line_bytes* with matcher-passing garbage.

        The adversarial line is built so every scanned word shares the
        effective address's compare bits and satisfies the align bits —
        the worst case for the matcher: garbage it cannot reject.  The
        memory system must then squash the junk via its failing page walks
        and arbiter priorities.
        """
        if self._rng.random() >= self.config.corrupt_fill_rate:
            return line_bytes
        self.stats.corrupted_scans += 1
        bits = content.address_bits
        compare_shift = bits - content.compare_bits
        upper = (effective_vaddr & ((1 << bits) - 1)) >> compare_shift
        align_mask = (1 << content.align_bits) - 1
        word_size = content.word_size
        words = []
        for _ in range(len(line_bytes) // word_size):
            low = self._rng.getrandbits(compare_shift) & ~align_mask
            word = (upper << compare_shift) | low
            words.append(word.to_bytes(word_size, "little"))
        garbage = b"".join(words)
        return garbage + line_bytes[len(garbage):]

    # -- MSHR ---------------------------------------------------------------

    def mshr_exhausted(self, time: int) -> bool:
        """Is a prefetch issue at *time* rejected by an MSHR storm?"""
        cfg = self.config
        if time < self._mshr_storm_until:
            self.stats.mshr_rejections += 1
            return True
        if cfg.mshr_storm_rate and self._rng.random() < cfg.mshr_storm_rate:
            self.stats.mshr_storms += 1
            self._mshr_storm_until = time + cfg.mshr_storm_cycles
            self.stats.mshr_rejections += 1
            return True
        return False

    # -- snapshot hooks -----------------------------------------------------

    def state_dict(self) -> dict:
        """PRNG stream position, storm window, and injection counters.

        The Mersenne Twister state is captured exactly so a resumed run
        draws the identical fault sequence an uninterrupted run would —
        without this, every fault decision after the snapshot diverges.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "stats": dataclass_state(self.stats),
            "rng": [version, list(internal), gauss_next],
            "mshr_storm_until": self._mshr_storm_until,
        }

    def load_state_dict(self, state: dict) -> None:
        load_dataclass_state(self.stats, state["stats"])
        version, internal, gauss_next = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))
        self._mshr_storm_until = state["mshr_storm_until"]

    # -- prefetch thrash ----------------------------------------------------

    def maybe_thrash(self, memsys) -> None:
        """Possibly evict a prefetched-but-unreferenced line."""
        if self._rng.random() >= self.config.thrash_rate:
            return
        buffer = memsys.prefetch_buffer
        if buffer is not None and len(buffer):
            victim = self._rng.choice(buffer.resident_lines())
            buffer.evict(victim)
            self.stats.thrash_evictions += 1
            return
        l2 = memsys.hier.l2
        line_shift = memsys.config.line_size.bit_length() - 1
        candidates = [
            line.tag << line_shift
            for line in l2.contents()
            if line.was_prefetched and not line.referenced
        ]
        if not candidates:
            return
        l2.invalidate(self._rng.choice(candidates))
        l2.stats.evictions += 1
        l2.stats.polluting_evictions += 1
        self.stats.thrash_evictions += 1


def fault_storm(intensity: float, seed: int = 1) -> FaultConfig:
    """A scenario exercising *every* fault type, scaled by *intensity*.

    ``intensity=1.0`` corrupts every scanned line, delays or drops most
    bus grants, and keeps the DTLB and MSHRs under sustained pressure;
    ``intensity=0.0`` is an attached-but-silent injector (the control
    point of the graceful-degradation curve).
    """
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    base = FaultConfig(
        enabled=True,
        seed=seed,
        bus_drop_rate=0.10,
        bus_delay_rate=0.30,
        tlb_drop_rate=0.20,
        tlb_storm_rate=0.02,
        corrupt_fill_rate=0.50,
        mshr_storm_rate=0.05,
        thrash_rate=0.20,
    )
    return base.scaled(intensity)
