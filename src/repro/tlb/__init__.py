"""Data TLB and hardware page walker models."""

from repro.tlb.dtlb import DataTLB
from repro.tlb.walker import PageWalker

__all__ = ["DataTLB", "PageWalker"]
