"""Set-associative data TLB.

Table 1 specifies a 64-entry 4-way DTLB; Section 4.2.2 sweeps the size from
64 to 1024 entries to isolate the contribution of the content prefetcher's
implicit TLB prefetching ("over a third of the prefetch requests issued
required an address translation not present in the data TLB").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.params import TLBConfig
from repro.snapshot.hooks import dataclass_state, load_dataclass_state

__all__ = ["TLBStats", "DataTLB"]


@dataclass(slots=True)
class TLBStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    # Translations inserted on behalf of prefetch requests (the paper's
    # "TLB prefetching" side effect).
    prefetch_fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class DataTLB:
    """True-LRU set-associative TLB mapping virtual pages to frames."""

    __slots__ = (
        "config",
        "stats",
        "_num_sets",
        "_page_shift",
        "_offset_mask",
        "_sets",
    )

    def __init__(self, config: TLBConfig) -> None:
        if config.entries % config.associativity:
            raise ValueError("TLB entries must be divisible by associativity")
        self.config = config
        self.stats = TLBStats()
        self._num_sets = config.num_sets
        self._page_shift = config.page_size.bit_length() - 1
        self._offset_mask = config.page_size - 1
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def _set_of(self, vpn: int) -> OrderedDict:
        return self._sets[vpn % self._num_sets]

    def translate(self, vaddr: int) -> int | None:
        """Architectural access: returns the physical address or ``None``."""
        stats = self.stats
        stats.accesses += 1
        vpn = vaddr >> self._page_shift
        entries = self._sets[vpn % self._num_sets]
        frame = entries.get(vpn)
        if frame is None:
            stats.misses += 1
            return None
        stats.hits += 1
        entries.move_to_end(vpn)
        return frame | (vaddr & self._offset_mask)

    def peek(self, vaddr: int) -> int | None:
        """Non-architectural probe: no LRU update, no statistics."""
        vpn = vaddr >> self._page_shift
        frame = self._sets[vpn % self._num_sets].get(vpn)
        if frame is None:
            return None
        return frame | (vaddr & self._offset_mask)

    def insert(self, vaddr: int, paddr: int, prefetch: bool = False) -> None:
        """Install a translation (evicting LRU if the set is full)."""
        vpn = vaddr >> self._page_shift
        entries = self._set_of(vpn)
        if vpn in entries:
            entries.move_to_end(vpn)
        else:
            if len(entries) >= self.config.associativity:
                entries.popitem(last=False)
            entries[vpn] = paddr & ~self._offset_mask
        if prefetch:
            self.stats.prefetch_fills += 1

    def contains(self, vaddr: int) -> bool:
        vpn = vaddr >> self._page_shift
        return vpn in self._set_of(vpn)

    def invalidate(self, vaddr: int) -> bool:
        """Drop the translation covering *vaddr*; True if one was present."""
        vpn = vaddr >> self._page_shift
        return self._set_of(vpn).pop(vpn, None) is not None

    def invalidate_random(self, rng, count: int) -> int:
        """Drop up to *count* randomly-chosen entries (fault injection).

        Returns the number actually invalidated.  *rng* is the caller's
        seeded ``random.Random`` so the storm is reproducible.
        """
        resident = [
            (index, vpn)
            for index, entries in enumerate(self._sets)
            for vpn in entries
        ]
        if not resident:
            return 0
        victims = rng.sample(resident, min(count, len(resident)))
        for index, vpn in victims:
            del self._sets[index][vpn]
        return len(victims)

    def reset_stats(self) -> None:
        self.stats = TLBStats()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- snapshot hooks -------------------------------------------------------

    def state_dict(self) -> dict:
        """Every set's (vpn, frame) entries in LRU order, plus counters."""
        return {
            "stats": dataclass_state(self.stats),
            "sets": [
                [[vpn, frame] for vpn, frame in entries.items()]
                for entries in self._sets
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        sets = state["sets"]
        if len(sets) != self._num_sets:
            raise ValueError(
                "TLB snapshot has %d sets; this TLB has %d"
                % (len(sets), self._num_sets)
            )
        load_dataclass_state(self.stats, state["stats"])
        self._sets = [
            OrderedDict((vpn, frame) for vpn, frame in set_state)
            for set_state in sets
        ]
