"""Hardware page walker.

On a DTLB miss the walker reads the page-directory entry and the page-table
entry from (cached) memory.  Two paper-relevant behaviours live here:

* walk fill traffic **bypasses** the content prefetcher's scanner — page
  tables are dense pointer arrays and scanning them would cause "a
  combinational explosion of highly speculative prefetches" (Section 3.5);
* walks triggered by *prefetch* requests implicitly prefetch translations
  into the DTLB, the effect quantified in Section 4.2.2.

The walker itself is stateless; it simply turns a virtual address into the
sequence of physical line reads the walk performs and accounts for them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.address import ADDRESS_BITS, line_mask
from repro.memory.pagetable import PageTable

__all__ = ["WalkResult", "PageWalker"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one hardware page walk."""

    paddr: int
    # Physical line addresses read during the walk, in access order.
    line_addrs: tuple
    triggered_by_prefetch: bool


class PageWalker:
    """Generates page-walk memory traffic for DTLB misses."""

    def __init__(
        self,
        page_table: PageTable,
        line_size: int = 64,
        address_bits: int = ADDRESS_BITS,
    ) -> None:
        self.page_table = page_table
        self._line_mask = line_mask(line_size, address_bits)
        self.walks = 0
        self.prefetch_walks = 0

    def walk(self, vaddr: int, for_prefetch: bool = False) -> WalkResult:
        """Translate *vaddr*, producing the walk's physical line reads."""
        paddr = self.page_table.translate(vaddr)
        lines = tuple(
            addr & self._line_mask
            for addr in self.page_table.walk_addresses(vaddr)
        )
        self.walks += 1
        if for_prefetch:
            self.prefetch_walks += 1
        return WalkResult(paddr, lines, for_prefetch)
