"""repro — reproduction of "A Stateless, Content-Directed Data Prefetching
Mechanism" (Cooksey, Jourdan & Grunwald, ASPLOS 2002).

Quick start::

    from repro import MachineConfig, TimingSimulator, build_benchmark

    workload = build_benchmark("specjbb-vsnet", scale=0.25)
    config = MachineConfig()  # stride + content prefetchers, paper tuning
    result = TimingSimulator(config, workload.memory).run(workload.trace)

    baseline_cfg = config.with_content(enabled=False)
    baseline = TimingSimulator(baseline_cfg, workload.memory).run(
        workload.trace
    )
    print("speedup: %.3f" % result.speedup_over(baseline))

Package map:

* :mod:`repro.params` — machine configuration (Table 1).
* :mod:`repro.memory` — 32-bit address space with real byte contents.
* :mod:`repro.cache`, :mod:`repro.tlb`, :mod:`repro.interconnect` — the
  memory hierarchy (caches with per-line depth bits, DTLB + walker,
  priority arbiters, bus).
* :mod:`repro.prefetch` — stride, content-directed, and Markov
  prefetchers; the virtual-address-matching heuristic.
* :mod:`repro.core` — functional and timing simulators.
* :mod:`repro.workloads` — synthetic stand-ins for the Table 2 suite.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.configio import load_machine_config, save_machine_config
from repro.core.functional import FunctionalSimulator
from repro.core.results import FunctionalResult, TimingResult
from repro.core.simulator import TimingSimulator, run_pair
from repro.params import (
    BusConfig,
    CacheConfig,
    ContentConfig,
    CoreConfig,
    MachineConfig,
    MarkovConfig,
    StrideConfig,
    TLBConfig,
)
from repro.prefetch import (
    ContentPrefetcher,
    MarkovPrefetcher,
    StridePrefetcher,
    VirtualAddressMatcher,
)
from repro.workloads.suite import benchmark_names, build_benchmark

__version__ = "1.0.0"

__all__ = [
    "BusConfig",
    "CacheConfig",
    "ContentConfig",
    "ContentPrefetcher",
    "CoreConfig",
    "FunctionalResult",
    "FunctionalSimulator",
    "MachineConfig",
    "MarkovConfig",
    "MarkovPrefetcher",
    "StrideConfig",
    "StridePrefetcher",
    "TLBConfig",
    "TimingResult",
    "TimingSimulator",
    "VirtualAddressMatcher",
    "benchmark_names",
    "build_benchmark",
    "load_machine_config",
    "run_pair",
    "save_machine_config",
    "__version__",
]
