"""µop trace representation consumed by the simulators."""

from repro.trace.ops import (
    BRANCH,
    COMPUTE,
    LOAD,
    STORE,
    Trace,
    TraceBuilder,
    TupleTraceBuilder,
)
from repro.trace.serialize import (
    TRACE_FORMAT_VERSION,
    load_trace,
    load_workload,
    save_trace,
    save_workload,
)

__all__ = [
    "BRANCH",
    "COMPUTE",
    "LOAD",
    "STORE",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceBuilder",
    "TupleTraceBuilder",
    "load_trace",
    "load_workload",
    "save_trace",
    "save_workload",
]
