"""µop trace representation consumed by the simulators."""

from repro.trace.ops import (
    BRANCH,
    COMPUTE,
    LOAD,
    STORE,
    Trace,
    TraceBuilder,
)
from repro.trace.serialize import (
    load_trace,
    load_workload,
    save_trace,
    save_workload,
)

__all__ = [
    "BRANCH",
    "COMPUTE",
    "LOAD",
    "STORE",
    "Trace",
    "TraceBuilder",
    "load_trace",
    "load_workload",
    "save_trace",
    "save_workload",
]
