"""Trace serialization: save and reload µop traces.

Workload generation is deterministic but not free; persisting a built
trace lets sweeps and CI runs skip regeneration.  The format is a compact
binary stream (one byte of opcode + varint fields), far smaller than
pickled tuples, with a short header carrying the trace metadata.

Note: a trace alone is not a workload — the content prefetcher also needs
the memory image.  :func:`save_workload` / :func:`load_workload` persist
both (the image as page-number + page-bytes pairs).
"""

from __future__ import annotations

import io
import struct

from repro.memory.backing import BackingMemory
from repro.trace.ops import BRANCH, COMPUTE, LOAD, STORE, Trace

__all__ = [
    "save_trace",
    "load_trace",
    "save_workload",
    "load_workload",
]

_MAGIC = b"CDPT\x01"
_IMAGE_MAGIC = b"CDPI\x01"


def _write_varint(out: io.BufferedIOBase, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def save_trace(trace: Trace, path: str) -> None:
    """Write *trace* to *path* in the compact binary format."""
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        name_bytes = trace.name.encode("utf-8")
        handle.write(struct.pack("<H", len(name_bytes)))
        handle.write(name_bytes)
        handle.write(struct.pack("<QQ", len(trace.ops),
                                 trace.instruction_count))
        buffer = io.BytesIO()
        for op in trace.ops:
            kind = op[0]
            buffer.write(bytes([kind]))
            if kind == LOAD:
                _write_varint(buffer, op[1])
                _write_varint(buffer, op[2])
                _write_varint(buffer, op[3] + 1)  # dep: -1 -> 0
            elif kind == STORE:
                _write_varint(buffer, op[1])
                _write_varint(buffer, op[2])
            elif kind == COMPUTE:
                _write_varint(buffer, op[1])
            else:  # BRANCH
                buffer.write(bytes([op[1]]))
        handle.write(buffer.getvalue())


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(_MAGIC):
        raise ValueError("not a CDP trace file: %s" % path)
    pos = len(_MAGIC)
    (name_len,) = struct.unpack_from("<H", data, pos)
    pos += 2
    name = data[pos:pos + name_len].decode("utf-8")
    pos += name_len
    op_count, instruction_count = struct.unpack_from("<QQ", data, pos)
    pos += 16
    ops = []
    for _ in range(op_count):
        kind = data[pos]
        pos += 1
        if kind == LOAD:
            vaddr, pos = _read_varint(data, pos)
            pc, pos = _read_varint(data, pos)
            dep, pos = _read_varint(data, pos)
            ops.append((LOAD, vaddr, pc, dep - 1))
        elif kind == STORE:
            vaddr, pos = _read_varint(data, pos)
            pc, pos = _read_varint(data, pos)
            ops.append((STORE, vaddr, pc))
        elif kind == COMPUTE:
            count, pos = _read_varint(data, pos)
            ops.append((COMPUTE, count))
        elif kind == BRANCH:
            ops.append((BRANCH, data[pos]))
            pos += 1
        else:
            raise ValueError("corrupt trace: bad opcode %d" % kind)
    return Trace(name, ops, instruction_count=instruction_count)


def save_workload(trace: Trace, memory: BackingMemory, path: str) -> None:
    """Persist a trace plus its memory image (two files: path, path.img)."""
    save_trace(trace, path)
    with open(path + ".img", "wb") as handle:
        handle.write(_IMAGE_MAGIC)
        handle.write(struct.pack("<IQ", memory.page_size,
                                 memory.touched_pages))
        for number in memory.touched_page_numbers():
            handle.write(struct.pack("<Q", number))
            handle.write(memory.read_bytes(
                number * memory.page_size, memory.page_size
            ))


def load_workload(path: str) -> tuple:
    """Load ``(trace, memory)`` written by :func:`save_workload`."""
    trace = load_trace(path)
    with open(path + ".img", "rb") as handle:
        data = handle.read()
    if not data.startswith(_IMAGE_MAGIC):
        raise ValueError("not a CDP image file: %s.img" % path)
    pos = len(_IMAGE_MAGIC)
    page_size, page_count = struct.unpack_from("<IQ", data, pos)
    pos += 12
    memory = BackingMemory(page_size=page_size)
    for _ in range(page_count):
        (number,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        memory.write_bytes(
            number * page_size, data[pos:pos + page_size]
        )
        pos += page_size
    return trace, memory
