"""Trace serialization: save and reload µop traces.

Workload generation is deterministic but not free; persisting a built
trace lets sweeps and CI runs skip regeneration.  The current format (v2)
dumps the trace's column buffers (see :mod:`repro.trace.ops`) as one
zlib-compressed block: encoding and decoding are single C-speed passes
over flat arrays, where the v1 format paid a Python-level varint loop per
op.  v1 files are still readable (the loader dispatches on the magic);
:data:`TRACE_FORMAT_VERSION` is part of the workload disk-cache key, so
caches written in the old format are invalidated rather than re-parsed.

Note: a trace alone is not a workload — the content prefetcher also needs
the memory image.  :func:`save_workload` / :func:`load_workload` persist
both (the image as page-number + page-bytes pairs).
"""

from __future__ import annotations

import io
import struct
import zlib

from repro.memory.backing import BackingMemory
from repro.trace.ops import BRANCH, COMPUTE, LOAD, STORE, Trace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "save_trace",
    "load_trace",
    "save_workload",
    "load_workload",
]

#: Bump when the on-disk encoding changes; embedded in workload-cache
#: file names (see :func:`repro.workloads.suite.build_benchmark`) so
#: stale caches invalidate cleanly instead of failing to parse.
TRACE_FORMAT_VERSION = 2

_MAGIC_V1 = b"CDPT\x01"
_MAGIC = b"CDPT\x02"
_IMAGE_MAGIC = b"CDPI\x01"

#: zlib level 1: ~4x faster than the default at a few percent size cost —
#: the disk cache is read far more often than written, but decode speed
#: is identical across levels.
_ZLIB_LEVEL = 1


def _write_varint(out: io.BufferedIOBase, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def save_trace(trace: Trace, path: str) -> None:
    """Write *trace* to *path* in the v2 column format."""
    kinds, f0, f1, f2 = trace.kinds, trace.f0, trace.f1, trace.f2
    header = struct.pack(
        "<QQQ2s", len(kinds), trace.instruction_count, trace.uop_count,
        (f0.typecode + f2.typecode).encode("ascii"),
    )
    payload = zlib.compress(
        bytes(kinds) + f0.tobytes() + f1.tobytes() + f2.tobytes(),
        _ZLIB_LEVEL,
    )
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        name_bytes = trace.name.encode("utf-8")
        handle.write(struct.pack("<H", len(name_bytes)))
        handle.write(name_bytes)
        handle.write(header)
        handle.write(struct.pack("<Q", len(payload)))
        handle.write(payload)


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace` (v2) or the v1 writer."""
    with open(path, "rb") as handle:
        data = handle.read()
    if data.startswith(_MAGIC_V1):
        return _load_trace_v1(data, path)
    if not data.startswith(_MAGIC):
        raise ValueError("not a CDP trace file: %s" % path)
    pos = len(_MAGIC)
    (name_len,) = struct.unpack_from("<H", data, pos)
    pos += 2
    name = data[pos:pos + name_len].decode("utf-8")
    pos += name_len
    op_count, instruction_count, uop_count, codes = struct.unpack_from(
        "<QQQ2s", data, pos
    )
    pos += 26
    (payload_len,) = struct.unpack_from("<Q", data, pos)
    pos += 8
    raw = zlib.decompress(data[pos:pos + payload_len])
    unsigned, signed = codes.decode("ascii")
    from array import array

    kinds = bytearray(raw[:op_count])
    f0 = array(unsigned)
    f1 = array(unsigned)
    f2 = array(signed)
    width = f0.itemsize
    offset = op_count
    f0.frombytes(raw[offset:offset + op_count * width])
    offset += op_count * width
    f1.frombytes(raw[offset:offset + op_count * width])
    offset += op_count * width
    f2.frombytes(raw[offset:offset + op_count * width])
    return Trace(
        name,
        columns=(kinds, f0, f1, f2),
        uop_count=uop_count,
        instruction_count=instruction_count,
    )


def _load_trace_v1(data: bytes, path: str) -> Trace:
    """Decode the v1 per-op varint stream (the tuple-era format)."""
    pos = len(_MAGIC_V1)
    (name_len,) = struct.unpack_from("<H", data, pos)
    pos += 2
    name = data[pos:pos + name_len].decode("utf-8")
    pos += name_len
    op_count, instruction_count = struct.unpack_from("<QQ", data, pos)
    pos += 16
    ops = []
    for _ in range(op_count):
        kind = data[pos]
        pos += 1
        if kind == LOAD:
            vaddr, pos = _read_varint(data, pos)
            pc, pos = _read_varint(data, pos)
            dep, pos = _read_varint(data, pos)
            ops.append((LOAD, vaddr, pc, dep - 1))
        elif kind == STORE:
            vaddr, pos = _read_varint(data, pos)
            pc, pos = _read_varint(data, pos)
            ops.append((STORE, vaddr, pc))
        elif kind == COMPUTE:
            count, pos = _read_varint(data, pos)
            ops.append((COMPUTE, count))
        elif kind == BRANCH:
            ops.append((BRANCH, data[pos]))
            pos += 1
        else:
            raise ValueError("corrupt trace: bad opcode %d" % kind)
    return Trace(name, ops, instruction_count=instruction_count)


def save_workload(trace: Trace, memory: BackingMemory, path: str) -> None:
    """Persist a trace plus its memory image (two files: path, path.img)."""
    save_trace(trace, path)
    with open(path + ".img", "wb") as handle:
        handle.write(_IMAGE_MAGIC)
        handle.write(struct.pack("<IQ", memory.page_size,
                                 memory.touched_pages))
        for number in memory.touched_page_numbers():
            handle.write(struct.pack("<Q", number))
            handle.write(memory.read_bytes(
                number * memory.page_size, memory.page_size
            ))


def load_workload(path: str) -> tuple:
    """Load ``(trace, memory)`` written by :func:`save_workload`."""
    trace = load_trace(path)
    with open(path + ".img", "rb") as handle:
        data = handle.read()
    if not data.startswith(_IMAGE_MAGIC):
        raise ValueError("not a CDP image file: %s.img" % path)
    pos = len(_IMAGE_MAGIC)
    page_size, page_count = struct.unpack_from("<IQ", data, pos)
    pos += 12
    memory = BackingMemory(page_size=page_size)
    for _ in range(page_count):
        (number,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        memory.write_bytes(
            number * page_size, data[pos:pos + page_size]
        )
        pos += page_size
    return trace, memory
