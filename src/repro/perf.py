"""Stage timers and counters for the simulation hot path.

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows"; this module is the observability side of that goal.  It provides a
process-wide :class:`PerfRecorder` that experiments and the workload
builders report into:

* **stages** — named wall-clock sections (``workload-build``,
  ``timing-sim`` ...), accumulated across calls;
* **counters** — named event counts (cache hits in the workload image
  cache, simulated µops ...);
* **throughputs** — µops-per-second samples per simulator kind, the
  number ``scripts/bench_perf.py`` records into ``BENCH_perf.json``.

Recording is off by default and costs one attribute check per call site
when disabled, so the instrumentation can live permanently on the hot
paths.  ``repro-experiments --profile`` switches it on and prints the
report after each experiment.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "PerfRecorder",
    "RECORDER",
    "counter",
    "enabled",
    "gauge",
    "record_throughput",
    "report",
    "set_enabled",
    "stage",
]


class PerfRecorder:
    """Accumulates stage timings, counters, and throughput samples."""

    def __init__(self) -> None:
        self.enabled = False
        self.stage_seconds: dict = {}
        self.stage_calls: dict = {}
        self.counters: dict = {}
        # name -> high-water mark (service queue depth, in-flight jobs...).
        self.gauges: dict = {}
        # kind -> list of (uops, seconds) samples.
        self.throughput_samples: dict = {}

    # -- recording -----------------------------------------------------------

    @contextmanager
    def stage(self, name: str):
        """Time one section; accumulates under *name* when enabled."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed
            )
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1

    def counter(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous level; the report keeps the high-water."""
        if not self.enabled:
            return
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def record_throughput(self, kind: str, uops: int, seconds: float) -> None:
        """Record one simulator run: *uops* simulated in *seconds*."""
        if not self.enabled:
            return
        self.throughput_samples.setdefault(kind, []).append((uops, seconds))

    # -- reading -------------------------------------------------------------

    def uops_per_second(self, kind: str) -> float:
        """Aggregate µops/sec across all samples of *kind* (0.0 if none)."""
        samples = self.throughput_samples.get(kind, ())
        total_uops = sum(uops for uops, _ in samples)
        total_seconds = sum(seconds for _, seconds in samples)
        if total_seconds <= 0:
            return 0.0
        return total_uops / total_seconds

    def uops_per_second_best(self, kind: str) -> float:
        """Fastest single sample of *kind* (0.0 if none).

        The best-of rate is what benchmark records should report: the
        aggregate rate folds in scheduler preemptions and cold-cache
        warm-up, which are properties of the run environment, not the
        code under test.
        """
        best = 0.0
        for uops, seconds in self.throughput_samples.get(kind, ()):
            if seconds > 0:
                rate = uops / seconds
                if rate > best:
                    best = rate
        return best

    #: The canonical pipeline phases (label -> contributing stage names).
    #: ``timing-sim`` wall-clock *includes* the event drain interleaved
    #: with execution; ``timing-drain`` separately times the tail drain
    #: that runs after the last µop issues.
    PHASES = (
        ("trace build", ("workload-build", "workload-load")),
        ("functional sim", ("functional-sim",)),
        ("timing sim", ("timing-sim",)),
        ("drain (tail)", ("timing-drain",)),
    )

    def phase_breakdown(self) -> list:
        """Per-phase (label, seconds, calls) over the canonical phases.

        Phases with no recorded stage are omitted; the result is the
        machine-readable form of the ``phases:`` report section, so
        hot-path hunts can start from ``repro-experiments --profile``
        output instead of an ad-hoc cProfile run.
        """
        out = []
        for label, stages in self.PHASES:
            seconds = sum(self.stage_seconds.get(name, 0.0)
                          for name in stages)
            calls = sum(self.stage_calls.get(name, 0) for name in stages)
            if calls:
                out.append((label, seconds, calls))
        return out

    def report(self) -> str:
        """Human-readable profile: phases, stages, throughputs, counters."""
        lines = ["perf profile:"]
        phases = self.phase_breakdown()
        if phases:
            total = sum(seconds for _, seconds, _ in phases)
            for label, seconds, calls in phases:
                share = 100.0 * seconds / total if total > 0 else 0.0
                lines.append(
                    "  phase %-24s %8.3fs (%5.1f%%) over %d call%s"
                    % (label, seconds, share, calls,
                       "" if calls == 1 else "s")
                )
        for name in sorted(self.stage_seconds):
            lines.append(
                "  stage %-24s %8.3fs over %d call%s"
                % (name, self.stage_seconds[name], self.stage_calls[name],
                   "" if self.stage_calls[name] == 1 else "s")
            )
        for kind in sorted(self.throughput_samples):
            samples = self.throughput_samples[kind]
            lines.append(
                "  %-30s %10.0f uops/s over %d run%s"
                % (kind, self.uops_per_second(kind), len(samples),
                   "" if len(samples) == 1 else "s")
            )
        for name in sorted(self.counters):
            lines.append("  counter %-22s %d" % (name, self.counters[name]))
        for name in sorted(self.gauges):
            lines.append(
                "  gauge   %-22s %g (high-water)" % (name, self.gauges[name])
            )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.counters.clear()
        self.gauges.clear()
        self.throughput_samples.clear()


#: The process-wide recorder the instrumented call sites report into.
RECORDER = PerfRecorder()


def set_enabled(on: bool) -> bool:
    """Switch recording; returns the previous state."""
    previous = RECORDER.enabled
    RECORDER.enabled = on
    return previous


def enabled() -> bool:
    return RECORDER.enabled


def stage(name: str):
    return RECORDER.stage(name)


def counter(name: str, amount: int = 1) -> None:
    RECORDER.counter(name, amount)


def gauge(name: str, value: float) -> None:
    RECORDER.gauge(name, value)


def record_throughput(kind: str, uops: int, seconds: float) -> None:
    RECORDER.record_throughput(kind, uops, seconds)


def report() -> str:
    return RECORDER.report()
